#pragma once

// vgpu-san: report vocabulary of the dynamic checker.
//
// The simulator models exactly the hazards NVIDIA's compute-sanitizer
// (née cuda-memcheck) hunts on hardware, so it can detect them
// mechanistically instead of heuristically:
//
//   memcheck   - every global/constant/texture access is validated against
//                the heap arena's allocation registry (bounds + liveness),
//   racecheck  - per-shared-memory-word shadow state flags cross-warp
//                read/write hazards not separated by __syncthreads,
//   synccheck  - barriers released while some warps already exited the
//                kernel (divergent __syncthreads, UB on hardware).
//
// Checking is opt-in (Runtime::set_check_mode or the VGPU_CHECK env var)
// and purely observational: KernelStats and timing are bit-identical with
// the checker on or off for hazard-free kernels. Diagnostics accumulate
// into a CheckReport returned alongside KernelStats and printable in the
// cuda-memcheck "=========" text format.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/kernel.hpp"

namespace vgpu {

/// Which checkers run. Bits compose; kFull is all of the checkers.
/// kEscalate is an orthogonal flag (not part of kFull): instead of printing
/// reports, findings poison the context with a sticky
/// cudaErrorIllegalAddress — the vgpu-fault error model's escalation mode,
/// for programs that practice error-checking discipline rather than reading
/// sanitizer logs. Spell it VGPU_CHECK=full,escalate.
enum class CheckMode : unsigned {
  kOff = 0,
  kMemcheck = 1u << 0,
  kRacecheck = 1u << 1,
  kSynccheck = 1u << 2,
  kEscalate = 1u << 3,
  kFull = kMemcheck | kRacecheck | kSynccheck,
};

constexpr CheckMode operator|(CheckMode a, CheckMode b) {
  return static_cast<CheckMode>(static_cast<unsigned>(a) |
                                static_cast<unsigned>(b));
}
constexpr bool check_has(CheckMode m, CheckMode bit) {
  return (static_cast<unsigned>(m) & static_cast<unsigned>(bit)) != 0;
}

/// Parse "off", "memcheck", "racecheck", "synccheck", "full" (also "on",
/// "all", "1"/"0") or a comma-separated combination. Throws
/// std::invalid_argument on an unknown token — a typo silently disabling
/// checking would defeat the point.
CheckMode parse_check_mode(std::string_view s);

enum class CheckKind : std::uint8_t {
  kOutOfBounds = 0,    ///< memcheck: access outside its owning allocation.
  kUseAfterFree,       ///< memcheck: access to a freed allocation.
  kRaceRaw,            ///< racecheck: read of another warp's same-interval write.
  kRaceWar,            ///< racecheck: write over another warp's same-interval read.
  kRaceWaw,            ///< racecheck: two warps writing one word in one interval.
  kDivergentBarrier,   ///< synccheck: barrier some warps never reached.
};
inline constexpr std::size_t kNumCheckKinds = 6;

const char* check_kind_name(CheckKind k);

/// One diagnostic with full block/warp/lane coordinates, so tests (and
/// humans) can pin the hazard to the exact thread that caused it.
struct CheckDiag {
  CheckKind kind{};
  Dim3 block;           ///< blockIdx of the offending block.
  int warp = -1;        ///< Warp within the block (-1: block-scope diagnostic).
  int lane = -1;        ///< Lane within the warp (-1: warp- or block-scope).
  int other_warp = -1;  ///< Racecheck: the conflicting warp.
  std::uint64_t addr = 0;   ///< Device address (memcheck) / shared byte offset.
  std::uint64_t bytes = 0;  ///< Access size.
  std::string detail;       ///< Human-readable one-liner.

  bool operator==(const CheckDiag&) const = default;
};

/// Accumulated result of one kernel (or one block, pre-merge): exact counts
/// per hazard kind plus the first kMaxDiags diagnostics in block order.
struct CheckReport {
  static constexpr std::size_t kMaxDiags = 16;

  std::array<std::uint64_t, kNumCheckKinds> counts{};
  std::vector<CheckDiag> diags;

  std::uint64_t count(CheckKind k) const {
    return counts[static_cast<std::size_t>(k)];
  }
  std::uint64_t errors() const;
  bool clean() const { return errors() == 0; }
  /// True if a diagnostic added now would still be stored (lets callers
  /// skip building the message text once the cap is reached).
  bool wants_diag() const { return diags.size() < kMaxDiags; }

  void add(CheckDiag d);
  void count_only(CheckKind k) { ++counts[static_cast<std::size_t>(k)]; }

  /// Block-order merge; diagnostics keep the first kMaxDiags overall.
  CheckReport& operator+=(const CheckReport& o);

  /// cuda-memcheck-style "=========" text rendering.
  std::string to_string() const;

  bool operator==(const CheckReport&) const = default;
};

}  // namespace vgpu
