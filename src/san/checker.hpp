#pragma once

// vgpu-san: per-block dynamic checker (DESIGN.md section 7).
//
// One BlockChecker lives inside each BlockRunner arena, so all shadow state
// is per-block and per-worker: the parallel grid engine needs no cross-
// thread sharing, and reports stay bitwise deterministic at any thread
// count (they are gathered per block and merged in block-index order, like
// every other per-block product).
//
//   memcheck   - vet_global() classifies every active lane's address
//                against the heap's allocation registry. Offending lanes
//                are reported *and dropped* from the functional access, so
//                the simulation survives the fault and keeps collecting
//                diagnostics (the registry is read-only during a grid, so
//                concurrent workers may classify freely).
//   racecheck  - one shadow word per 4 shared-memory bytes records the
//                last writing warp and the reading warps of the current
//                barrier interval ("epoch"). A cross-warp combination of
//                accesses, at least one a write, inside one epoch is a
//                hazard; __syncthreads advances the epoch. Warp-level
//                lockstep means intra-warp accesses never race, and
//                shared atomics are exempt (they serialize in hardware).
//   synccheck  - a barrier that releases while some warps have already
//                exited the kernel is divergent-barrier UB on hardware;
//                the release is reported with the set of missing warps.

#include <cstdint>
#include <vector>

#include "mem/heap.hpp"
#include "san/check.hpp"
#include "sim/lanevec.hpp"

namespace vgpu {

/// Memory space of a vetted device access, for diagnostics.
enum class MemSpace : std::uint8_t { kGlobal, kConstant, kTexture };
const char* mem_space_name(MemSpace s);

class BlockChecker {
 public:
  /// Bind to a grid: which checkers run, the heap whose registry memcheck
  /// consults, and the shared-segment capacity the race shadow must cover.
  void configure(CheckMode mode, const DeviceHeap* heap,
                 std::size_t shared_capacity);

  /// Reset per-block state (shadow words, barrier epoch, report).
  void begin_block(Dim3 block_idx);

  bool enabled() const { return mode_ != CheckMode::kOff; }
  bool memcheck_on() const { return check_has(mode_, CheckMode::kMemcheck); }
  bool racecheck_on() const { return check_has(mode_, CheckMode::kRacecheck); }
  bool synccheck_on() const { return check_has(mode_, CheckMode::kSynccheck); }

  /// Memcheck: returns the subset of `active` whose accesses are valid;
  /// invalid lanes are reported with full coordinates and suppressed.
  Mask vet_global(const LaneVec<std::uint64_t>& addrs, Mask active,
                  std::size_t elem, bool write, int warp, MemSpace space);

  /// Racecheck: record one warp shared-memory instruction (addrs are byte
  /// offsets into the block's shared segment).
  void on_shared_access(const LaneVec<std::uint64_t>& addrs, Mask active,
                        std::size_t elem, bool write, int warp);

  /// Synccheck + racecheck epoch: called by the block runner when a barrier
  /// releases. `arrived` has bit w set if warp w arrived; warps missing
  /// from it (below `total`) exited the kernel without reaching the
  /// barrier.
  void on_barrier_release(std::uint64_t arrived, int total);

  /// Move the accumulated per-block report out (leaves it empty).
  CheckReport take_report() {
    CheckReport r = std::move(report_);
    report_ = CheckReport{};
    return r;
  }

 private:
  static constexpr std::uint32_t kNoEpoch = 0xffffffffu;

  /// Shadow state of one 4-byte shared-memory word within the current
  /// barrier interval. Blocks have at most 64 warps (2048 threads), so the
  /// reader set fits a 64-bit mask.
  struct WordShadow {
    std::int16_t writer = -1;
    std::uint32_t write_epoch = kNoEpoch;
    std::uint64_t readers = 0;
    std::uint32_t read_epoch = kNoEpoch;
  };

  void report_race(CheckKind kind, std::uint64_t word, int warp, int other);

  CheckMode mode_ = CheckMode::kOff;
  const DeviceHeap* heap_ = nullptr;
  std::size_t shared_words_ = 0;
  Dim3 block_idx_;
  std::uint32_t epoch_ = 0;
  std::vector<WordShadow> shadow_;
  CheckReport report_;
};

}  // namespace vgpu
