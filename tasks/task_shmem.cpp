// Shmem (Table I: shared memory). Tiled matrix multiply: the naive kernel
// re-reads every A/B element from global memory n times, the optimized one
// stages 16x16 tiles in shared memory.

#include "core/shmem_mm.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kNDim = 64;

class ShmemPlugin : public TaskPlugin {
 public:
  ShmemPlugin(std::string task, std::string name, bool shared)
      : TaskPlugin(std::move(task), std::move(name)), shared_(shared) {}

  void setup(GradeContext& ctx) override {
    a_ = upload(ctx.rt, ctx.data.f("a"));
    b_ = upload(ctx.rt, ctx.data.f("b"));
    c_ = ctx.rt.malloc<Real>(static_cast<std::size_t>(kNDim) * kNDim);
  }

  void launch(GradeContext& ctx) override {
    DevSpan<Real> a = a_, b = b_, c = c_;
    LaunchConfig cfg{Dim3{kNDim / kTile, kNDim / kTile}, Dim3{kTile, kTile},
                     shared_ ? "mm_shared" : "mm_global"};
    if (shared_)
      ctx.rt.launch(cfg,
                    [=](WarpCtx& w) { return mm_shared_kernel(w, a, b, c, kNDim); });
    else
      ctx.rt.launch(cfg,
                    [=](WarpCtx& w) { return mm_global_kernel(w, a, b, c, kNDim); });
  }

  std::vector<double> verify(GradeContext& ctx) override {
    return widen(fetch(ctx.rt, c_));
  }

 private:
  bool shared_;
  DevSpan<Real> a_;
  DevSpan<Real> b_;
  DevSpan<Real> c_;
};

class ShmemNaive : public ShmemPlugin {
 public:
  ShmemNaive(std::string t, std::string n)
      : ShmemPlugin(std::move(t), std::move(n), false) {}
};

class ShmemOptimized : public ShmemPlugin {
 public:
  ShmemOptimized(std::string t, std::string n)
      : ShmemPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_shmem(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "shmem";
  spec.title = "64x64 matmul: stage reused tiles in shared memory";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    std::size_t nn = static_cast<std::size_t>(kNDim) * kNDim;
    d.f32["a"] = random_vector(nn, 61);
    d.f32["b"] = random_vector(nn, 62);
    d.num["n"] = kNDim;
    return d;
  };
  spec.reference = [](const TaskData& d) {
    return widen(matmul_ref(d.f("a"), d.f("b"), kNDim));
  };
  // Tile-step re-association vs the reference's row order (same bound the
  // benchmark driver uses).
  spec.tolerance = 1e-4 * kNDim;
  spec.gating_rules = {"global-reuse-no-smem"};
  spec.baseline_submission = "shmem.optimized";
  tasks.add(std::move(spec));

  add_plugin<ShmemNaive>(plugins, "shmem", "shmem.naive",
                         Expectation::kMustFail);
  add_plugin<ShmemOptimized>(plugins, "shmem", "shmem.optimized",
                             Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
