// BankRedux (Table I: shared memory bank conflicts). Per-block tree
// reduction, one partial per block: the naive submission uses the
// doubling-stride index (2/4/8-way bank conflicts), the optimized one the
// conflict-free halving sequential index.

#include "core/bankredux.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kN = 1 << 14;
constexpr int kTpb = 256;
constexpr int kBlocks = kN / kTpb;

// The device tree reduction re-associates the float sum, so compare against
// per-block double accumulation with an absolute slack.
std::vector<double> block_sums(const std::vector<Real>& x) {
  std::vector<double> out(kBlocks);
  for (int b = 0; b < kBlocks; ++b) {
    double acc = 0;
    for (int i = 0; i < kTpb; ++i)
      acc += x[static_cast<std::size_t>(b) * kTpb + static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(b)] = acc;
  }
  return out;
}

class BankreduxPlugin : public TaskPlugin {
 public:
  BankreduxPlugin(std::string task, std::string name, bool conflict_free)
      : TaskPlugin(std::move(task), std::move(name)),
        conflict_free_(conflict_free) {}

  void setup(GradeContext& ctx) override {
    x_ = upload(ctx.rt, ctx.data.f("x"));
    r_ = ctx.rt.malloc<Real>(kBlocks);
  }

  void launch(GradeContext& ctx) override {
    DevSpan<Real> x = x_, r = r_;
    LaunchConfig cfg{Dim3{kBlocks}, Dim3{kTpb},
                     conflict_free_ ? "sum" : "sum_bc"};
    if (conflict_free_)
      ctx.rt.launch(cfg, [=](WarpCtx& w) { return sum_kernel(w, x, r); });
    else
      ctx.rt.launch(cfg, [=](WarpCtx& w) { return sum_bc_kernel(w, x, r); });
  }

  std::vector<double> verify(GradeContext& ctx) override {
    return widen(fetch(ctx.rt, r_));
  }

 private:
  bool conflict_free_;
  DevSpan<Real> x_;
  DevSpan<Real> r_;
};

class BankreduxNaive : public BankreduxPlugin {
 public:
  BankreduxNaive(std::string t, std::string n)
      : BankreduxPlugin(std::move(t), std::move(n), false) {}
};

class BankreduxOptimized : public BankreduxPlugin {
 public:
  BankreduxOptimized(std::string t, std::string n)
      : BankreduxPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_bankredux(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "bankredux";
  spec.title = "Block reduction: index shared memory conflict-free";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["x"] = random_vector(kN, 41);
    d.num["n"] = kN;
    return d;
  };
  spec.reference = [](const TaskData& d) { return block_sums(d.f("x")); };
  spec.tolerance = 0.05;
  spec.gating_rules = {"shared-bank-conflicts"};
  spec.baseline_submission = "bankredux.optimized";
  tasks.add(std::move(spec));

  add_plugin<BankreduxNaive>(plugins, "bankredux", "bankredux.naive",
                             Expectation::kMustFail);
  add_plugin<BankreduxOptimized>(plugins, "bankredux", "bankredux.optimized",
                                 Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
