// TaskGraph (launch overhead). A chain of four small dependent AXPY steps
// executed twice: the naive submission pays kernel_launch_us eight times by
// submitting op-by-op, the optimized one instantiates the chain once and
// launches the graph per repeat.

#include <optional>

#include "core/comem.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kN = 1024;
constexpr int kChain = 4;
constexpr int kRepeats = 2;
constexpr int kTpb = 256;
constexpr Real kA = Real{0.5};

class TaskgraphPlugin : public TaskPlugin {
 public:
  TaskgraphPlugin(std::string task, std::string name, bool graph)
      : TaskPlugin(std::move(task), std::move(name)), graph_(graph) {}

  void setup(GradeContext& ctx) override {
    x_ = upload(ctx.rt, ctx.data.f("x"));
    y_ = upload(ctx.rt, ctx.data.f("y0"));
    if (graph_) {
      DevSpan<Real> x = x_, y = y_;
      LaunchConfig cfg{Dim3{blocks_for(kN, kTpb)}, Dim3{kTpb}, "axpy_step"};
      auto step = [=](WarpCtx& w) { return axpy_1per_thread(w, x, y, kN, kA); };
      vgpu::GraphBuilder builder;
      vgpu::GraphNodeId prev = -1;
      for (int k = 0; k < kChain; ++k) {
        vgpu::GraphNodeId node = builder.add_kernel(cfg, step);
        if (prev >= 0) builder.add_dependency(node, prev);
        prev = node;
      }
      exec_.emplace(builder.instantiate());
    }
  }

  void launch(GradeContext& ctx) override {
    if (graph_) {
      for (int r = 0; r < kRepeats; ++r)
        ctx.rt.launch_graph(*exec_, ctx.rt.default_stream());
    } else {
      DevSpan<Real> x = x_, y = y_;
      LaunchConfig cfg{Dim3{blocks_for(kN, kTpb)}, Dim3{kTpb}, "axpy_step"};
      auto step = [=](WarpCtx& w) { return axpy_1per_thread(w, x, y, kN, kA); };
      for (int r = 0; r < kRepeats; ++r)
        for (int k = 0; k < kChain; ++k) ctx.rt.launch(cfg, step);
    }
  }

  std::vector<double> verify(GradeContext& ctx) override {
    return widen(fetch(ctx.rt, y_));
  }

 private:
  bool graph_;
  DevSpan<Real> x_;
  DevSpan<Real> y_;
  std::optional<vgpu::ExecGraph> exec_;
};

class TaskgraphNaive : public TaskgraphPlugin {
 public:
  TaskgraphNaive(std::string t, std::string n)
      : TaskgraphPlugin(std::move(t), std::move(n), false) {}
};

class TaskgraphOptimized : public TaskgraphPlugin {
 public:
  TaskgraphOptimized(std::string t, std::string n)
      : TaskgraphPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_taskgraph(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "taskgraph";
  spec.title = "Repeated AXPY chain: submit it as an instantiated graph";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["x"] = random_vector(kN, 91);
    d.f32["y0"] = random_vector(kN, 92);
    d.num["n"] = kN;
    d.num["chain"] = kChain;
    d.num["repeats"] = kRepeats;
    return d;
  };
  spec.reference = [](const TaskData& d) {
    std::vector<Real> y = d.f("y0");
    for (int i = 0; i < kRepeats * kChain; ++i) axpy_ref(d.f("x"), y, kA);
    return widen(y);
  };
  spec.tolerance = 0;
  spec.gating_rules = {"launch-overhead"};
  spec.baseline_submission = "taskgraph.optimized";
  tasks.add(std::move(spec));

  add_plugin<TaskgraphNaive>(plugins, "taskgraph", "taskgraph.naive",
                             Expectation::kMustFail);
  add_plugin<TaskgraphOptimized>(plugins, "taskgraph", "taskgraph.optimized",
                                 Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
