// CoMem (Table I: coalesced memory access). The task is the benchmark's
// AXPY over a fixed 16-block grid; the naive submission walks a contiguous
// block per thread (uncoalesced), the optimized one strides grid-size
// (cyclic, coalesced).

#include "core/comem.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kN = 1 << 17;
constexpr int kGrid = 16;
constexpr int kTpb = 256;
constexpr Real kA = Real{2.5};

class ComemPlugin : public TaskPlugin {
 public:
  ComemPlugin(std::string task, std::string name, bool cyclic)
      : TaskPlugin(std::move(task), std::move(name)), cyclic_(cyclic) {}

  void setup(GradeContext& ctx) override {
    x_ = upload(ctx.rt, ctx.data.f("x"));
    y_ = upload(ctx.rt, ctx.data.f("y0"));
  }

  void launch(GradeContext& ctx) override {
    DevSpan<Real> x = x_, y = y_;
    LaunchConfig cfg{Dim3{kGrid}, Dim3{kTpb},
                     cyclic_ ? "axpy_cyclic" : "axpy_block"};
    if (cyclic_)
      ctx.rt.launch(cfg, [=](WarpCtx& w) { return axpy_cyclic(w, x, y, kN, kA); });
    else
      ctx.rt.launch(cfg, [=](WarpCtx& w) { return axpy_block(w, x, y, kN, kA); });
  }

  std::vector<double> verify(GradeContext& ctx) override {
    return widen(fetch(ctx.rt, y_));
  }

 private:
  bool cyclic_;
  DevSpan<Real> x_;
  DevSpan<Real> y_;
};

class ComemNaive : public ComemPlugin {
 public:
  ComemNaive(std::string t, std::string n)
      : ComemPlugin(std::move(t), std::move(n), false) {}
};

class ComemOptimized : public ComemPlugin {
 public:
  ComemOptimized(std::string t, std::string n)
      : ComemPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_comem(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "comem";
  spec.title = "AXPY with a fixed 16-block grid: coalesce your global loads";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["x"] = random_vector(kN, 21);
    d.f32["y0"] = random_vector(kN, 22);
    d.num["n"] = kN;
    return d;
  };
  spec.reference = [](const TaskData& d) {
    std::vector<Real> y = d.f("y0");
    axpy_ref(d.f("x"), y, kA);
    return widen(y);
  };
  spec.tolerance = 0;
  spec.gating_rules = {"uncoalesced-global"};
  spec.baseline_submission = "comem.optimized";
  tasks.add(std::move(spec));

  add_plugin<ComemNaive>(plugins, "comem", "comem.naive",
                         Expectation::kMustFail);
  add_plugin<ComemOptimized>(plugins, "comem", "comem.optimized",
                             Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
