// WarpDivRedux (Table I: warp divergence). The task asks for the
// warp-uniform variant's output: z[i] = 2x+3y on even-numbered warps,
// 3x+2y on odd ones. The naive submission is authored here, against the
// facade — it still branches on thread parity (every warp takes both arms),
// the optimized one reuses the benchmark's warp-parity kernel.

#include "core/warpdiv.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kN = 1 << 12;
constexpr int kTpb = 256;

/// Functionally identical to nowd_kernel, but the outer branch diverges on
/// thread parity: each arm re-derives the warp-uniform coefficients, so
/// every warp serializes both arms for nothing.
WarpTask parity_branch_kernel(WarpCtx& w, DevSpan<Real> x, DevSpan<Real> y,
                              DevSpan<Real> z, int n) {
  LaneI tid = w.global_tid_x();
  w.branch(tid < n, [&] {
    LaneF xv = w.load(x, tid);
    LaneF yv = w.load(y, tid);
    LaneI warp = tid / vgpu::kWarpSize;
    auto arm = [&] {
      w.branch(
          warp % 2 == 0,
          [&] {
            w.alu(2);
            w.store(z, tid, Real{2} * xv + Real{3} * yv);
          },
          [&] {
            w.alu(2);
            w.store(z, tid, Real{3} * xv + Real{2} * yv);
          });
    };
    w.branch(tid % 2 == 0, arm, arm);
  });
  co_return;
}

class WarpdivPlugin : public TaskPlugin {
 public:
  WarpdivPlugin(std::string task, std::string name, bool uniform)
      : TaskPlugin(std::move(task), std::move(name)), uniform_(uniform) {}

  void setup(GradeContext& ctx) override {
    x_ = upload(ctx.rt, ctx.data.f("x"));
    y_ = upload(ctx.rt, ctx.data.f("y"));
    z_ = ctx.rt.malloc<Real>(kN);
  }

  void launch(GradeContext& ctx) override {
    DevSpan<Real> x = x_, y = y_, z = z_;
    LaunchConfig cfg{Dim3{blocks_for(kN, kTpb)}, Dim3{kTpb},
                     uniform_ ? "nowd" : "parity_branch"};
    if (uniform_)
      ctx.rt.launch(cfg, [=](WarpCtx& w) { return nowd_kernel(w, x, y, z, kN); });
    else
      ctx.rt.launch(cfg,
                    [=](WarpCtx& w) { return parity_branch_kernel(w, x, y, z, kN); });
  }

  std::vector<double> verify(GradeContext& ctx) override {
    return widen(fetch(ctx.rt, z_));
  }

 private:
  bool uniform_;
  DevSpan<Real> x_;
  DevSpan<Real> y_;
  DevSpan<Real> z_;
};

class WarpdivNaive : public WarpdivPlugin {
 public:
  WarpdivNaive(std::string t, std::string n)
      : WarpdivPlugin(std::move(t), std::move(n), false) {}
};

class WarpdivOptimized : public WarpdivPlugin {
 public:
  WarpdivOptimized(std::string t, std::string n)
      : WarpdivPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_warpdiv(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "warpdiv";
  spec.title = "Per-warp AXPBY: keep intra-warp branches uniform";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["x"] = random_vector(kN, 11);
    d.f32["y"] = random_vector(kN, 12);
    d.num["n"] = kN;
    return d;
  };
  spec.reference = [](const TaskData& d) {
    std::vector<Real> z(kN);
    nowd_ref(d.f("x"), d.f("y"), z);
    return widen(z);
  };
  spec.tolerance = 0;
  spec.gating_rules = {"warp-divergence"};
  spec.baseline_submission = "warpdiv.optimized";
  tasks.add(std::move(spec));

  add_plugin<WarpdivNaive>(plugins, "warpdiv", "warpdiv.naive",
                           Expectation::kMustFail);
  add_plugin<WarpdivOptimized>(plugins, "warpdiv", "warpdiv.optimized",
                               Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
