// Shuffle (Table I: warp shuffle reduction). Same per-block reduction shape
// as bankredux: the naive submission bounces every step through shared
// memory with a barrier, the optimized one reduces each warp in registers
// with shuffle exchanges and touches shared memory once per warp.

#include "core/shuffle_reduce.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kN = 1 << 14;
constexpr int kTpb = 256;
constexpr int kBlocks = kN / kTpb;

std::vector<double> block_sums(const std::vector<Real>& x) {
  std::vector<double> out(kBlocks);
  for (int b = 0; b < kBlocks; ++b) {
    double acc = 0;
    for (int i = 0; i < kTpb; ++i)
      acc += x[static_cast<std::size_t>(b) * kTpb + static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(b)] = acc;
  }
  return out;
}

class ShufflePlugin : public TaskPlugin {
 public:
  ShufflePlugin(std::string task, std::string name, bool shuffle)
      : TaskPlugin(std::move(task), std::move(name)), shuffle_(shuffle) {}

  void setup(GradeContext& ctx) override {
    x_ = upload(ctx.rt, ctx.data.f("x"));
    r_ = ctx.rt.malloc<Real>(kBlocks);
  }

  void launch(GradeContext& ctx) override {
    DevSpan<Real> x = x_, r = r_;
    LaunchConfig cfg{Dim3{kBlocks}, Dim3{kTpb},
                     shuffle_ ? "reduce_shuffle" : "reduce_shared"};
    if (shuffle_)
      ctx.rt.launch(cfg,
                    [=](WarpCtx& w) { return reduce_shuffle_kernel(w, x, r, kN); });
    else
      ctx.rt.launch(cfg,
                    [=](WarpCtx& w) { return reduce_shared_kernel(w, x, r, kN); });
  }

  std::vector<double> verify(GradeContext& ctx) override {
    return widen(fetch(ctx.rt, r_));
  }

 private:
  bool shuffle_;
  DevSpan<Real> x_;
  DevSpan<Real> r_;
};

class ShuffleNaive : public ShufflePlugin {
 public:
  ShuffleNaive(std::string t, std::string n)
      : ShufflePlugin(std::move(t), std::move(n), false) {}
};

class ShuffleOptimized : public ShufflePlugin {
 public:
  ShuffleOptimized(std::string t, std::string n)
      : ShufflePlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_shuffle(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "shuffle";
  spec.title = "Block reduction: exchange partials through registers";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["x"] = random_vector(kN, 51);
    d.num["n"] = kN;
    return d;
  };
  spec.reference = [](const TaskData& d) { return block_sums(d.f("x")); };
  spec.tolerance = 0.05;
  spec.gating_rules = {"smem-reduction-shuffle"};
  spec.baseline_submission = "shuffle.optimized";
  tasks.add(std::move(spec));

  add_plugin<ShuffleNaive>(plugins, "shuffle", "shuffle.naive",
                           Expectation::kMustFail);
  add_plugin<ShuffleOptimized>(plugins, "shuffle", "shuffle.optimized",
                               Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
