// ConstPoly (constant memory broadcast). Polynomial evaluation where every
// lane reads the same coefficient each step: the naive submission keeps the
// coefficients in global memory (a full warp transaction per read), the
// optimized one uploads them to constant memory and gets the broadcast.

#include "core/readonly.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kN = 1 << 12;
constexpr int kTerms = 4;
constexpr int kTpb = 256;

class ConstpolyPlugin : public TaskPlugin {
 public:
  ConstpolyPlugin(std::string task, std::string name, bool constant)
      : TaskPlugin(std::move(task), std::move(name)), constant_(constant) {}

  void setup(GradeContext& ctx) override {
    x_ = upload(ctx.rt, ctx.data.f("x"));
    y_ = ctx.rt.malloc<Real>(kN);
    if (constant_)
      cc_ = ctx.rt.const_upload(std::span<const Real>(ctx.data.f("coeffs")));
    else
      cg_ = upload(ctx.rt, ctx.data.f("coeffs"));
  }

  void launch(GradeContext& ctx) override {
    DevSpan<Real> x = x_, y = y_;
    LaunchConfig cfg{Dim3{blocks_for(kN, kTpb)}, Dim3{kTpb},
                     constant_ ? "poly_const" : "poly_global"};
    if (constant_) {
      ConstSpan<Real> cc = cc_;
      ctx.rt.launch(cfg, [=](WarpCtx& w) {
        return poly_const_kernel(w, cc, kTerms, x, y, kN);
      });
    } else {
      DevSpan<Real> cg = cg_;
      ctx.rt.launch(cfg, [=](WarpCtx& w) {
        return poly_global_kernel(w, cg, kTerms, x, y, kN);
      });
    }
  }

  std::vector<double> verify(GradeContext& ctx) override {
    return widen(fetch(ctx.rt, y_));
  }

 private:
  bool constant_;
  DevSpan<Real> x_;
  DevSpan<Real> y_;
  DevSpan<Real> cg_;
  ConstSpan<Real> cc_;
};

class ConstpolyNaive : public ConstpolyPlugin {
 public:
  ConstpolyNaive(std::string t, std::string n)
      : ConstpolyPlugin(std::move(t), std::move(n), false) {}
};

class ConstpolyOptimized : public ConstpolyPlugin {
 public:
  ConstpolyOptimized(std::string t, std::string n)
      : ConstpolyPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_constpoly(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "constpoly";
  spec.title = "Polynomial evaluation: put the coefficients in constant memory";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["x"] = random_vector(kN, 113, Real{-1}, Real{1});
    d.f32["coeffs"] = random_vector(kTerms, 114);
    d.num["n"] = kN;
    d.num["terms"] = kTerms;
    return d;
  };
  spec.reference = [](const TaskData& d) {
    const std::vector<Real>& hx = d.f("x");
    const std::vector<Real>& hc = d.f("coeffs");
    std::vector<Real> want(kN);
    for (int i = 0; i < kN; ++i) {
      Real acc = 0, pw = 1;
      for (int k = 0; k < kTerms; ++k) {
        acc += hc[static_cast<std::size_t>(k)] * pw;
        pw *= hx[static_cast<std::size_t>(i)];
      }
      want[static_cast<std::size_t>(i)] = acc;
    }
    return widen(want);
  };
  spec.tolerance = 0;
  spec.gating_rules = {"missed-constant-broadcast"};
  spec.baseline_submission = "constpoly.optimized";
  tasks.add(std::move(spec));

  add_plugin<ConstpolyNaive>(plugins, "constpoly", "constpoly.naive",
                             Expectation::kMustFail);
  add_plugin<ConstpolyOptimized>(plugins, "constpoly", "constpoly.optimized",
                                 Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
