// ReadOnlyMem (Table I: texture memory). Matrix addition on the K80
// profile, where the dedicated texture unit gives read-only data its own
// path to DRAM: the naive submission reads A and B through plain global
// loads, the optimized one fetches both through 2-D textures.

#include "core/readonly.hpp"
#include "linalg/dense.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kNDim = 128;
constexpr std::size_t kNN = static_cast<std::size_t>(kNDim) * kNDim;

class ReadonlyPlugin : public TaskPlugin {
 public:
  ReadonlyPlugin(std::string task, std::string name, bool textured)
      : TaskPlugin(std::move(task), std::move(name)), textured_(textured) {}

  void setup(GradeContext& ctx) override {
    if (textured_) {
      ta_ = ctx.rt.texture2d(std::span<const Real>(ctx.data.f("a")), kNDim, kNDim);
      tb_ = ctx.rt.texture2d(std::span<const Real>(ctx.data.f("b")), kNDim, kNDim);
    } else {
      a_ = upload(ctx.rt, ctx.data.f("a"));
      b_ = upload(ctx.rt, ctx.data.f("b"));
    }
    c_ = ctx.rt.malloc<Real>(kNN);
  }

  void launch(GradeContext& ctx) override {
    DevSpan<Real> c = c_;
    LaunchConfig cfg{Dim3{kNDim / 32, kNDim / 8}, Dim3{32, 8},
                     textured_ ? "matadd_tex2d" : "matadd_global"};
    if (textured_) {
      Texture<Real> ta = ta_, tb = tb_;
      ctx.rt.launch(cfg, [=](WarpCtx& w) {
        return matadd_tex2d_kernel(w, ta, tb, c, kNDim, kNDim);
      });
    } else {
      DevSpan<Real> a = a_, b = b_;
      ctx.rt.launch(cfg, [=](WarpCtx& w) {
        return matadd_global_kernel(w, a, b, c, kNDim, kNDim);
      });
    }
  }

  std::vector<double> verify(GradeContext& ctx) override {
    return widen(fetch(ctx.rt, c_));
  }

 private:
  bool textured_;
  DevSpan<Real> a_;
  DevSpan<Real> b_;
  Texture<Real> ta_;
  Texture<Real> tb_;
  DevSpan<Real> c_;
};

class ReadonlyNaive : public ReadonlyPlugin {
 public:
  ReadonlyNaive(std::string t, std::string n)
      : ReadonlyPlugin(std::move(t), std::move(n), false) {}
};

class ReadonlyOptimized : public ReadonlyPlugin {
 public:
  ReadonlyOptimized(std::string t, std::string n)
      : ReadonlyPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_readonly(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "readonly";
  spec.title = "Matrix addition on Kepler: read inputs through textures";
  spec.profile_name = "k80";
  spec.profile = [] { return vgpu::DeviceProfile::k80(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["a"] = random_vector(kNN, 111);
    d.f32["b"] = random_vector(kNN, 112);
    d.num["n"] = kNDim;
    return d;
  };
  spec.reference = [](const TaskData& d) {
    return widen(matadd_ref(d.f("a"), d.f("b")));
  };
  spec.tolerance = 0;
  spec.gating_rules = {"read-only-no-texture"};
  spec.baseline_submission = "readonly.optimized";
  tasks.add(std::move(spec));

  add_plugin<ReadonlyNaive>(plugins, "readonly", "readonly.naive",
                            Expectation::kMustFail);
  add_plugin<ReadonlyOptimized>(plugins, "readonly", "readonly.optimized",
                                Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
