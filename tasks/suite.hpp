#pragma once

// The shipped vgpu-grade task suite: one task per Table-I microbenchmark
// pair (plus the ConstPoly companion of ReadOnlyMem), each with a must-fail
// naive submission and a must-pass optimized submission.

#include "grade/plugin.hpp"
#include "grade/task.hpp"

namespace cumb::gradetasks {

using vgpu::grade::PluginRegistry;
using vgpu::grade::TaskRegistry;

void register_comem(TaskRegistry&, PluginRegistry&);
void register_warpdiv(TaskRegistry&, PluginRegistry&);
void register_memalign(TaskRegistry&, PluginRegistry&);
void register_shmem(TaskRegistry&, PluginRegistry&);
void register_conkernels(TaskRegistry&, PluginRegistry&);
void register_taskgraph(TaskRegistry&, PluginRegistry&);
void register_hdoverlap(TaskRegistry&, PluginRegistry&);
void register_gsoverlap(TaskRegistry&, PluginRegistry&);
void register_bankredux(TaskRegistry&, PluginRegistry&);
void register_shuffle(TaskRegistry&, PluginRegistry&);
void register_readonly(TaskRegistry&, PluginRegistry&);
void register_constpoly(TaskRegistry&, PluginRegistry&);
void register_unimem(TaskRegistry&, PluginRegistry&);
void register_minitransfer(TaskRegistry&, PluginRegistry&);
void register_dynparallel(TaskRegistry&, PluginRegistry&);

/// Register every built-in task + submission.
void register_all(TaskRegistry& tasks, PluginRegistry& plugins);

}  // namespace cumb::gradetasks
