// MemAlign (Table I: memory alignment). Both variants compute
// y[i] += a*x[i] for i in [1, n); the naive one shifts every thread's index
// by one (each warp straddles two 128-byte segments), the optimized one
// keeps indices aligned and masks out thread 0.

#include "core/memalign.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kN = 1 << 14;
constexpr int kTpb = 256;
constexpr Real kA = Real{1.5};

class MemalignPlugin : public TaskPlugin {
 public:
  MemalignPlugin(std::string task, std::string name, bool aligned)
      : TaskPlugin(std::move(task), std::move(name)), aligned_(aligned) {}

  void setup(GradeContext& ctx) override {
    x_ = upload(ctx.rt, ctx.data.f("x"));
    y_ = upload(ctx.rt, ctx.data.f("y0"));
  }

  void launch(GradeContext& ctx) override {
    DevSpan<Real> x = x_, y = y_;
    LaunchConfig cfg{Dim3{blocks_for(kN, kTpb)}, Dim3{kTpb},
                     aligned_ ? "axpy_aligned" : "axpy_misaligned"};
    if (aligned_)
      ctx.rt.launch(cfg, [=](WarpCtx& w) { return axpy_aligned(w, x, y, kN, kA); });
    else
      ctx.rt.launch(cfg,
                    [=](WarpCtx& w) { return axpy_misaligned(w, x, y, kN, kA); });
  }

  std::vector<double> verify(GradeContext& ctx) override {
    return widen(fetch(ctx.rt, y_));
  }

 private:
  bool aligned_;
  DevSpan<Real> x_;
  DevSpan<Real> y_;
};

class MemalignNaive : public MemalignPlugin {
 public:
  MemalignNaive(std::string t, std::string n)
      : MemalignPlugin(std::move(t), std::move(n), false) {}
};

class MemalignOptimized : public MemalignPlugin {
 public:
  MemalignOptimized(std::string t, std::string n)
      : MemalignPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_memalign(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "memalign";
  spec.title = "Offset AXPY: keep warp accesses segment-aligned";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["x"] = random_vector(kN, 31);
    d.f32["y0"] = random_vector(kN, 32);
    d.num["n"] = kN;
    return d;
  };
  spec.reference = [](const TaskData& d) {
    std::vector<Real> y = d.f("y0");
    const std::vector<Real>& x = d.f("x");
    for (std::size_t i = 1; i < y.size(); ++i) y[i] += kA * x[i];
    return widen(y);
  };
  spec.tolerance = 0;
  spec.gating_rules = {"misaligned-global"};
  spec.baseline_submission = "memalign.optimized";
  tasks.add(std::move(spec));

  add_plugin<MemalignNaive>(plugins, "memalign", "memalign.naive",
                            Expectation::kMustFail);
  add_plugin<MemalignOptimized>(plugins, "memalign", "memalign.optimized",
                                Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
