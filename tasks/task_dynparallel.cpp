// DynParallel (Table I: dynamic parallelism). Mandelbrot dwell image: the
// naive submission runs the full escape-time loop for every pixel with a
// uniform grid (most blocks finish long before the deepest one), the
// optimized Mariani-Silver submission subdivides rectangles from the device
// and fills uniform-border regions with plain stores.

#include "core/dynparallel.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kSize = 256;
constexpr int kMaxIter = 1024;

MandelFrame frame() {
  MandelFrame f;
  f.scale = 3.0f / kSize;
  return f;
}

class DynparallelPlugin : public TaskPlugin {
 public:
  DynparallelPlugin(std::string task, std::string name, bool ms)
      : TaskPlugin(std::move(task), std::move(name)), ms_(ms) {}

  void setup(GradeContext& ctx) override {
    dwell_ = ctx.rt.malloc<int>(static_cast<std::size_t>(kSize) * kSize);
  }

  void launch(GradeContext& ctx) override {
    DevSpan<int> dwell = dwell_;
    MandelFrame f = frame();
    if (ms_) {
      LaunchConfig cfg{Dim3{kMsInitDiv, kMsInitDiv}, Dim3{kMsTpb}, "mandel_ms"};
      ctx.rt.launch(cfg, [=](WarpCtx& w) {
        return mandel_ms_kernel(w, dwell, kSize, f, kMaxIter, 0, 0,
                                kSize / kMsInitDiv);
      });
    } else {
      LaunchConfig cfg{Dim3{kSize / 16, kSize / 16}, Dim3{16, 16},
                       "mandel_escape"};
      ctx.rt.launch(cfg, [=](WarpCtx& w) {
        return mandel_escape_kernel(w, dwell, kSize, kSize, f, kMaxIter);
      });
    }
  }

  std::vector<double> verify(GradeContext& ctx) override {
    return widen_i(fetch_i(ctx.rt, dwell_));
  }

 private:
  bool ms_;
  DevSpan<int> dwell_;
};

class DynparallelNaive : public DynparallelPlugin {
 public:
  DynparallelNaive(std::string t, std::string n)
      : DynparallelPlugin(std::move(t), std::move(n), false) {}
};

class DynparallelOptimized : public DynparallelPlugin {
 public:
  DynparallelOptimized(std::string t, std::string n)
      : DynparallelPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_dynparallel(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "dynparallel";
  spec.title = "Mandelbrot dwell: subdivide from the device";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.num["size"] = kSize;
    d.num["max_iter"] = kMaxIter;
    return d;
  };
  spec.reference = [](const TaskData&) {
    return widen_i(mandel_ref(kSize, kSize, frame(), kMaxIter));
  };
  spec.tolerance = 0;
  spec.gating_rules = {"block-imbalance"};
  spec.baseline_submission = "dynparallel.optimized";
  tasks.add(std::move(spec));

  add_plugin<DynparallelNaive>(plugins, "dynparallel", "dynparallel.naive",
                               Expectation::kMustFail);
  add_plugin<DynparallelOptimized>(plugins, "dynparallel",
                                   "dynparallel.optimized",
                                   Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
