// HDOverlap (Table I: overlapping data transfer and compute). Whole-offload
// AXPY: the naive submission copies both arrays in, runs one kernel, and
// copies the result out, all synchronously; the optimized one splits the
// work into chunks spread over two streams with async copies so chunk c's
// kernel overlaps chunk c+1's H2D and chunk c-1's D2H.

#include "core/comem.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kN = 1 << 18;
constexpr int kChunks = 2;
constexpr int kStreams = 2;
constexpr int kTpb = 256;
constexpr Real kA = Real{3.0};
constexpr int kChunkN = kN / kChunks;

class HdoverlapPlugin : public TaskPlugin {
 public:
  HdoverlapPlugin(std::string task, std::string name, bool pipelined)
      : TaskPlugin(std::move(task), std::move(name)), pipelined_(pipelined) {}

  void setup(GradeContext& ctx) override {
    x_ = ctx.rt.malloc<Real>(kN);
    y_ = ctx.rt.malloc<Real>(kN);
    got_.resize(kN);
  }

  void launch(GradeContext& ctx) override {
    const std::vector<Real>& hx = ctx.data.f("x");
    const std::vector<Real>& hy0 = ctx.data.f("y0");
    DevSpan<Real> x = x_, y = y_;
    if (!pipelined_) {
      ctx.rt.memcpy_h2d(x, std::span<const Real>(hx));
      ctx.rt.memcpy_h2d(y, std::span<const Real>(hy0));
      LaunchConfig cfg{Dim3{blocks_for(kN, kTpb)}, Dim3{kTpb}, "axpy_sync"};
      ctx.rt.launch(cfg,
                    [=](WarpCtx& w) { return axpy_1per_thread(w, x, y, kN, kA); });
      ctx.rt.memcpy_d2h(std::span<Real>(got_), y);
      return;
    }
    std::vector<Stream*> ss;
    for (int i = 0; i < kStreams; ++i) ss.push_back(&ctx.rt.create_stream());
    for (int c = 0; c < kChunks; ++c) {
      Stream& s = *ss[static_cast<std::size_t>(c % kStreams)];
      std::size_t off = static_cast<std::size_t>(c) * kChunkN;
      DevSpan<Real> xc = x.subspan(off, kChunkN);
      DevSpan<Real> yc = y.subspan(off, kChunkN);
      ctx.rt.memcpy_h2d_async(s, xc,
                              std::span<const Real>(hx).subspan(off, kChunkN));
      ctx.rt.memcpy_h2d_async(s, yc,
                              std::span<const Real>(hy0).subspan(off, kChunkN));
      LaunchConfig ck{Dim3{blocks_for(kChunkN, kTpb)}, Dim3{kTpb}, "axpy_chunk"};
      ctx.rt.launch(
          s, ck, [=](WarpCtx& w) { return axpy_1per_thread(w, xc, yc, kChunkN, kA); });
      ctx.rt.memcpy_d2h_async(s, std::span<Real>(got_).subspan(off, kChunkN), yc);
    }
  }

  std::vector<double> verify(GradeContext&) override { return widen(got_); }

 private:
  bool pipelined_;
  DevSpan<Real> x_;
  DevSpan<Real> y_;
  std::vector<Real> got_;
};

class HdoverlapNaive : public HdoverlapPlugin {
 public:
  HdoverlapNaive(std::string t, std::string n)
      : HdoverlapPlugin(std::move(t), std::move(n), false) {}
};

class HdoverlapOptimized : public HdoverlapPlugin {
 public:
  HdoverlapOptimized(std::string t, std::string n)
      : HdoverlapPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_hdoverlap(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "hdoverlap";
  spec.title = "AXPY offload: overlap copies with compute across streams";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["x"] = random_vector(kN, 101);
    d.f32["y0"] = random_vector(kN, 102);
    d.num["n"] = kN;
    d.num["chunks"] = kChunks;
    return d;
  };
  spec.reference = [](const TaskData& d) {
    std::vector<Real> y = d.f("y0");
    axpy_ref(d.f("x"), y, kA);
    return widen(y);
  };
  spec.tolerance = 0;
  spec.gating_rules = {"missed-copy-compute-overlap"};
  spec.baseline_submission = "hdoverlap.optimized";
  tasks.add(std::move(spec));

  add_plugin<HdoverlapNaive>(plugins, "hdoverlap", "hdoverlap.naive",
                             Expectation::kMustFail);
  add_plugin<HdoverlapOptimized>(plugins, "hdoverlap", "hdoverlap.optimized",
                                 Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
