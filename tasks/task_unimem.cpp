// UniMem (Table I: unified memory / access density). A strided AXPY touches
// only every 256th element: the naive submission still ships both whole
// arrays to the GPU and the whole result back; the optimized one uses
// managed memory so only the faulted pages migrate, and the host faults
// back only the pages it reads.

#include "core/unimem.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kN = 1 << 16;
constexpr int kStride = 256;
constexpr int kM = kN / kStride;
constexpr int kTpb = 256;
constexpr Real kA = Real{1.25};

class UnimemPlugin : public TaskPlugin {
 public:
  UnimemPlugin(std::string task, std::string name, bool managed)
      : TaskPlugin(std::move(task), std::move(name)), managed_(managed) {}

  void setup(GradeContext& ctx) override {
    if (managed_) {
      xm_ = ctx.rt.malloc_managed<Real>(kN);
      ym_ = ctx.rt.malloc_managed<Real>(kN);
      ctx.rt.managed_write(xm_, std::span<const Real>(ctx.data.f("x")));
      ctx.rt.managed_write(ym_, std::span<const Real>(ctx.data.f("y0")));
    } else {
      xe_ = ctx.rt.malloc<Real>(kN);
      ye_ = ctx.rt.malloc<Real>(kN);
      got_.resize(kN);
    }
  }

  void launch(GradeContext& ctx) override {
    LaunchConfig cfg{Dim3{blocks_for(kM, kTpb)}, Dim3{kTpb}, "axpy_strided"};
    if (managed_) {
      DevSpan<Real> x = xm_, y = ym_;
      ctx.rt.launch(cfg, [=](WarpCtx& w) {
        return axpy_strided_kernel(w, x, y, kM, kStride, kA);
      });
      ctx.rt.synchronize();
      ctx.rt.managed_host_touch(ym_, kStride, kM);
    } else {
      DevSpan<Real> x = xe_, y = ye_;
      ctx.rt.memcpy_h2d(x, std::span<const Real>(ctx.data.f("x")));
      ctx.rt.memcpy_h2d(y, std::span<const Real>(ctx.data.f("y0")));
      ctx.rt.launch(cfg, [=](WarpCtx& w) {
        return axpy_strided_kernel(w, x, y, kM, kStride, kA);
      });
      ctx.rt.memcpy_d2h(std::span<Real>(got_), y);
    }
  }

  std::vector<double> verify(GradeContext& ctx) override {
    if (managed_) {
      got_.resize(kN);
      ctx.rt.peek(std::span<Real>(got_), ym_);
    }
    return widen(got_);
  }

 private:
  bool managed_;
  DevSpan<Real> xe_;
  DevSpan<Real> ye_;
  DevSpan<Real> xm_;
  DevSpan<Real> ym_;
  std::vector<Real> got_;
};

class UnimemNaive : public UnimemPlugin {
 public:
  UnimemNaive(std::string t, std::string n)
      : UnimemPlugin(std::move(t), std::move(n), false) {}
};

class UnimemOptimized : public UnimemPlugin {
 public:
  UnimemOptimized(std::string t, std::string n)
      : UnimemPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_unimem(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "unimem";
  spec.title = "Sparse-touch AXPY: migrate pages on demand, not whole arrays";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["x"] = random_vector(kN, 121);
    d.f32["y0"] = random_vector(kN, 122);
    d.num["n"] = kN;
    d.num["stride"] = kStride;
    return d;
  };
  spec.reference = [](const TaskData& d) {
    std::vector<Real> y = d.f("y0");
    const std::vector<Real>& x = d.f("x");
    for (int i = 0; i < kM; ++i) {
      std::size_t idx = static_cast<std::size_t>(i) * kStride;
      y[idx] += kA * x[idx];
    }
    return widen(y);
  };
  spec.tolerance = 0;
  spec.gating_rules = {"eager-copy-sparse-touch"};
  spec.baseline_submission = "unimem.optimized";
  tasks.add(std::move(spec));

  add_plugin<UnimemNaive>(plugins, "unimem", "unimem.naive",
                          Expectation::kMustFail);
  add_plugin<UnimemOptimized>(plugins, "unimem", "unimem.optimized",
                              Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
