// MiniTransfer (Table I: avoiding useless data transfer). SpMV offload of a
// 256x256 matrix with 1024 non-zeros: the naive submission ships the whole
// dense matrix across the link, the optimized one converts to CSR on the
// host and ships only the three compressed arrays.

#include <algorithm>

#include "core/minitransfer.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kRows = 256;
constexpr long long kNnz = 1024;
constexpr int kTpb = 256;

class MinitransferPlugin : public TaskPlugin {
 public:
  MinitransferPlugin(std::string task, std::string name, bool csr)
      : TaskPlugin(std::move(task), std::move(name)), csr_(csr) {}

  void setup(GradeContext& ctx) override {
    got_.resize(kRows);
    if (csr_) {
      csr_data_ = dense_to_csr(ctx.data.f("dense"), kRows, kRows);
      rp_ = ctx.rt.malloc<int>(csr_data_.row_ptr.size());
      ci_ = ctx.rt.malloc<int>(std::max<std::size_t>(1, csr_data_.col_idx.size()));
      va_ = ctx.rt.malloc<Real>(std::max<std::size_t>(1, csr_data_.vals.size()));
    } else {
      da_ = ctx.rt.malloc<Real>(static_cast<std::size_t>(kRows) * kRows);
    }
    dx_ = ctx.rt.malloc<Real>(kRows);
    dy_ = ctx.rt.malloc<Real>(kRows);
  }

  void launch(GradeContext& ctx) override {
    DevSpan<Real> x = dx_, y = dy_;
    LaunchConfig cfg{Dim3{blocks_for(kRows, kTpb)}, Dim3{kTpb},
                     csr_ ? "spmv_csr" : "spmv_dense"};
    if (csr_) {
      ctx.rt.memcpy_h2d(rp_, std::span<const int>(csr_data_.row_ptr));
      if (!csr_data_.col_idx.empty()) {
        ctx.rt.memcpy_h2d(ci_, std::span<const int>(csr_data_.col_idx));
        ctx.rt.memcpy_h2d(va_, std::span<const Real>(csr_data_.vals));
      }
      ctx.rt.memcpy_h2d(x, std::span<const Real>(ctx.data.f("x")));
      DevSpan<int> rp = rp_, ci = ci_;
      DevSpan<Real> va = va_;
      ctx.rt.launch(cfg, [=](WarpCtx& w) {
        return spmv_csr_kernel(w, rp, ci, va, x, y, kRows);
      });
    } else {
      ctx.rt.memcpy_h2d(da_, std::span<const Real>(ctx.data.f("dense")));
      ctx.rt.memcpy_h2d(x, std::span<const Real>(ctx.data.f("x")));
      DevSpan<Real> a = da_;
      ctx.rt.launch(cfg, [=](WarpCtx& w) {
        return spmv_dense_kernel(w, a, x, y, kRows, kRows);
      });
    }
    ctx.rt.memcpy_d2h(std::span<Real>(got_), y);
  }

  std::vector<double> verify(GradeContext&) override { return widen(got_); }

 private:
  bool csr_;
  Csr csr_data_;
  DevSpan<Real> da_;
  DevSpan<int> rp_;
  DevSpan<int> ci_;
  DevSpan<Real> va_;
  DevSpan<Real> dx_;
  DevSpan<Real> dy_;
  std::vector<Real> got_;
};

class MinitransferNaive : public MinitransferPlugin {
 public:
  MinitransferNaive(std::string t, std::string n)
      : MinitransferPlugin(std::move(t), std::move(n), false) {}
};

class MinitransferOptimized : public MinitransferPlugin {
 public:
  MinitransferOptimized(std::string t, std::string n)
      : MinitransferPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_minitransfer(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "minitransfer";
  spec.title = "Sparse SpMV offload: ship CSR, not the dense matrix";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["dense"] = random_sparse_dense(kRows, kRows, kNnz, 131);
    d.f32["x"] = random_vector(kRows, 132);
    d.num["n"] = kRows;
    d.num["nnz"] = static_cast<double>(kNnz);
    return d;
  };
  spec.reference = [](const TaskData& d) {
    Csr csr = dense_to_csr(d.f("dense"), kRows, kRows);
    return widen(spmv_ref(csr, d.f("x")));
  };
  // The dense kernel's extra zero terms don't perturb the accumulator, so
  // both kernels reproduce the CSR reference bit-exactly.
  spec.tolerance = 0;
  spec.gating_rules = {"dense-offload-sparse"};
  spec.baseline_submission = "minitransfer.optimized";
  tasks.add(std::move(spec));

  add_plugin<MinitransferNaive>(plugins, "minitransfer", "minitransfer.naive",
                                Expectation::kMustFail);
  add_plugin<MinitransferOptimized>(plugins, "minitransfer",
                                    "minitransfer.optimized",
                                    Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
