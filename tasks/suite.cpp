#include "tasks/suite.hpp"

namespace cumb::gradetasks {

void register_all(TaskRegistry& tasks, PluginRegistry& plugins) {
  register_comem(tasks, plugins);
  register_warpdiv(tasks, plugins);
  register_memalign(tasks, plugins);
  register_shmem(tasks, plugins);
  register_conkernels(tasks, plugins);
  register_taskgraph(tasks, plugins);
  register_hdoverlap(tasks, plugins);
  register_gsoverlap(tasks, plugins);
  register_bankredux(tasks, plugins);
  register_shuffle(tasks, plugins);
  register_readonly(tasks, plugins);
  register_constpoly(tasks, plugins);
  register_unimem(tasks, plugins);
  register_minitransfer(tasks, plugins);
  register_dynparallel(tasks, plugins);
}

}  // namespace cumb::gradetasks

namespace vgpu::grade {

/// Registration hook the vgpu-grade driver binary links against.
void register_suite(TaskRegistry& tasks, PluginRegistry& plugins) {
  cumb::gradetasks::register_all(tasks, plugins);
}

}  // namespace vgpu::grade
