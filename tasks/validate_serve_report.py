#!/usr/bin/env python3
"""Validate a vgpu-serve report against tasks/serve_report.schema.json.

The shipped schema describes the current report version (2, the
fault-tolerance surface). Version-1 reports — emitted before the retry
engine, quotas, device health and the persistent cache existed — are still
accepted: the validator derives the v1 schema from the v2 one by shrinking
the required field sets and version constants back to the v1 shape, so old
archived reports keep validating without shipping two schema files.

Reuses the stdlib-only schema walker from validate_verdicts.py and layers
the cross-field invariants a schema can't express:

- per-tenant counters reconcile with the job records (submitted = records,
  completed = ok records, cached/failed likewise; v2 adds retried =
  records with attempts > 1 and the quota_wait_us sum);
- cache hits equal the number of cached job records, and misses are at
  least the number of distinct executed keys;
- every cached record has an uncached sibling with the same key and a
  byte-identical result (the whole point of deterministic caching);
- with any repeats in the queue the hit rate must be positive;
- v2: every record claims at least one attempt, every failed record's
  attempt log ends in "give_up", the top-level degraded flag reconciles
  with per-job degraded flags and device_health rows, simulated_wait_us
  equals the sum of all backoff and quota waits, and the persistent-cache
  counters are all zero when persistence is disabled (loads never exceed
  hits when it is enabled).

Exit codes: 0 all valid, 1 schema/invariant violations, 2 usage error or a
report whose schema_version this validator does not understand (checked
before anything else — a future-versioned report is neither valid nor
invalid, it is unreadable here).

Usage: validate_serve_report.py SCHEMA REPORT.json [REPORT.json ...]
"""

import copy
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from validate_verdicts import validate  # noqa: E402

KNOWN_SCHEMA_VERSIONS = {1, 2}

V1_TOP_REQUIRED = ["schema", "schema_version", "config", "jobs", "tenants",
                   "cache"]
V1_CONFIG_REQUIRED = ["workers", "cache_capacity"]
V1_JOB_REQUIRED = ["id", "tenant", "kernel", "n", "key", "ok", "cached"]
V1_TENANT_REQUIRED = ["tenant", "submitted", "completed", "cached", "failed"]
V1_CACHE_REQUIRED = ["hits", "misses", "evictions", "entries", "capacity"]


def schema_for_version(schema, version):
    """The shipped (v2) schema, or its v1 relaxation: v1 constants, v1
    required sets, and v1's error contract (a failed job carries only the
    message string). Properties stay — a v1 report simply never has them."""
    if version == 2:
        return schema
    v1 = copy.deepcopy(schema)
    v1["required"] = V1_TOP_REQUIRED
    v1["properties"]["schema"] = {"const": "vgpu-serve-report-v1"}
    v1["properties"]["schema_version"] = {"const": 1}
    v1["properties"]["config"]["required"] = V1_CONFIG_REQUIRED
    v1["properties"]["cache"]["required"] = V1_CACHE_REQUIRED
    job = v1["definitions"]["job"]
    job["required"] = V1_JOB_REQUIRED
    job["properties"]["kernel"] = {"type": "string",
                                   "pattern": "^(bench|grade):"}
    job["allOf"][0]["else"]["required"] = ["error"]
    v1["definitions"]["tenant"]["required"] = V1_TENANT_REQUIRED
    return v1


def cross_checks(doc, errors):
    version = doc["schema_version"]
    jobs = doc.get("jobs", [])
    by_tenant = {}
    for j in jobs:
        s = by_tenant.setdefault(
            j["tenant"], {"submitted": 0, "completed": 0, "cached": 0,
                          "failed": 0, "retried": 0, "quota_wait_us": 0})
        s["submitted"] += 1
        s["completed"] += 1 if j["ok"] else 0
        s["cached"] += 1 if j["cached"] else 0
        s["failed"] += 0 if j["ok"] else 1
        s["retried"] += 1 if j.get("attempts", 1) > 1 else 0
        s["quota_wait_us"] += j.get("quota_wait_us", 0)

    reported = {t["tenant"]: t for t in doc.get("tenants", [])}
    if set(reported) != set(by_tenant):
        errors.append(f"tenants section {sorted(reported)} != job tenants "
                      f"{sorted(by_tenant)}")
    for name, want in by_tenant.items():
        got = reported.get(name)
        if got is None:
            continue
        for k, v in want.items():
            if k in ("retried", "quota_wait_us") and version < 2:
                continue
            if got[k] != v:
                errors.append(f"tenant {name!r}: {k} is {got[k]}, "
                              f"job records say {v}")

    cache = doc.get("cache", {})
    cached_records = sum(1 for j in jobs if j["cached"])
    if cache.get("hits") != cached_records:
        errors.append(f"cache.hits {cache.get('hits')} != cached job records "
                      f"{cached_records}")
    executed_keys = {j["key"] for j in jobs if j["ok"] and not j["cached"]}
    if cache.get("misses", 0) < len(executed_keys):
        errors.append(f"cache.misses {cache.get('misses')} < distinct executed "
                      f"keys {len(executed_keys)}")

    # Deterministic caching: a cached record's bytes must equal the bytes of
    # the record that actually executed its key. With a persistent cache a
    # cached record may have no executed sibling in THIS run (it replayed
    # from a previous server's disk spill), so the orphan check only applies
    # when persistence is off.
    persistent = cache.get("persistent", {}).get("enabled", False)
    executed = {}
    for j in jobs:
        if j["ok"] and not j["cached"]:
            executed.setdefault(j["key"], j["result"])
    for j in jobs:
        if not j["cached"]:
            continue
        fresh = executed.get(j["key"])
        if fresh is None:
            if not persistent:
                errors.append(f"job {j['id']}: cached but no executed record "
                              f"shares key {j['key']}")
        elif fresh != j["result"]:
            errors.append(f"job {j['id']}: cached result differs from the "
                          f"executed result for key {j['key']}")

    ok_keys = [j["key"] for j in jobs if j["ok"]]
    repeats = len(ok_keys) - len(set(ok_keys))
    if repeats > 0 and cache.get("hits", 0) == 0:
        errors.append(f"{repeats} repeated keys in the queue but cache.hits "
                      f"is 0")

    if version >= 2:
        cross_checks_v2(doc, jobs, cache, errors)


def cross_checks_v2(doc, jobs, cache, errors):
    for j in jobs:
        if not j["ok"]:
            log = j["attempt_log"]
            if not log or log[-1]["action"] != "give_up":
                errors.append(f"job {j['id']}: failed but attempt_log does "
                              f"not end in give_up")
        if j["cached"] and j["attempts"] != 1:
            errors.append(f"job {j['id']}: cached but attempts "
                          f"{j['attempts']} != 1")

    # Degraded reconciliation: the top-level flag, per-job flags, and the
    # health table must tell the same story.
    job_degraded = any(j["degraded"] for j in jobs)
    if doc["degraded"] != job_degraded:
        errors.append(f"degraded is {doc['degraded']} but job records say "
                      f"{job_degraded}")
    evicting = [h for h in doc["device_health"] if h["evicted_jobs"] > 0]
    if doc["degraded"] != bool(evicting):
        errors.append(f"degraded is {doc['degraded']} but device_health has "
                      f"{len(evicting)} evicting rows")
    for h in doc["device_health"]:
        if h["healthy"] != (h["evicted_jobs"] == 0):
            errors.append(f"device {h['device']}: healthy {h['healthy']} "
                          f"inconsistent with evicted_jobs {h['evicted_jobs']}")

    # Simulated waiting time is exactly the sum of every job's backoff and
    # quota wait (integer-valued, so float equality is exact).
    want_wait = sum(j["backoff_us"] + j["quota_wait_us"] for j in jobs)
    if doc["simulated_wait_us"] != want_wait:
        errors.append(f"simulated_wait_us {doc['simulated_wait_us']} != "
                      f"sum of job waits {want_wait}")

    persistent = cache["persistent"]
    if persistent["enabled"] != doc["config"]["persistent_cache"]:
        errors.append("cache.persistent.enabled != config.persistent_cache")
    if not persistent["enabled"]:
        for k in ("stores", "loads", "quarantined"):
            if persistent[k] != 0:
                errors.append(f"persistence disabled but persistent.{k} is "
                              f"{persistent[k]}")
    elif persistent["loads"] > cache["hits"]:
        errors.append(f"persistent.loads {persistent['loads']} > cache.hits "
                      f"{cache['hits']} (every disk load is served as a hit)")


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    with open(argv[1]) as f:
        schema = json.load(f)
    bad = 0
    for path in argv[2:]:
        with open(path) as f:
            doc = json.load(f)
        version = doc.get("schema_version")
        if version not in KNOWN_SCHEMA_VERSIONS:
            print(f"UNSUPPORTED {path}: schema_version {version!r} not in "
                  f"{sorted(KNOWN_SCHEMA_VERSIONS)}")
            return 2
        errors = []
        versioned = schema_for_version(schema, version)
        validate(doc, versioned, versioned, "$", errors)
        if not errors:
            cross_checks(doc, errors)
        if errors:
            bad += 1
            print(f"INVALID {path}")
            for e in errors:
                print(f"  {e}")
        else:
            jobs = doc["jobs"]
            hits = doc["cache"]["hits"]
            print(f"ok {path}: v{version}, {len(jobs)} jobs, {hits} served "
                  f"from cache")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
