#!/usr/bin/env python3
"""Validate a vgpu-serve report against tasks/serve_report.schema.json.

Reuses the stdlib-only schema walker from validate_verdicts.py and layers
the cross-field invariants a schema can't express:

- per-tenant counters reconcile with the job records (submitted = records,
  completed = ok records, cached/failed likewise);
- cache hits equal the number of cached job records, and misses are at
  least the number of distinct executed keys;
- every cached record has an uncached sibling with the same key and a
  byte-identical result (the whole point of deterministic caching);
- with any repeats in the queue the hit rate must be positive.

Exit codes: 0 all valid, 1 schema/invariant violations, 2 usage error or a
report whose schema_version this validator does not understand (checked
before anything else — a future-versioned report is neither valid nor
invalid, it is unreadable here).

Usage: validate_serve_report.py SCHEMA REPORT.json [REPORT.json ...]
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from validate_verdicts import validate  # noqa: E402

KNOWN_SCHEMA_VERSIONS = {1}


def cross_checks(doc, errors):
    jobs = doc.get("jobs", [])
    by_tenant = {}
    for j in jobs:
        s = by_tenant.setdefault(
            j["tenant"], {"submitted": 0, "completed": 0, "cached": 0, "failed": 0})
        s["submitted"] += 1
        s["completed"] += 1 if j["ok"] else 0
        s["cached"] += 1 if j["cached"] else 0
        s["failed"] += 0 if j["ok"] else 1

    reported = {t["tenant"]: t for t in doc.get("tenants", [])}
    if set(reported) != set(by_tenant):
        errors.append(f"tenants section {sorted(reported)} != job tenants "
                      f"{sorted(by_tenant)}")
    for name, want in by_tenant.items():
        got = reported.get(name)
        if got is None:
            continue
        for k, v in want.items():
            if got[k] != v:
                errors.append(f"tenant {name!r}: {k} is {got[k]}, "
                              f"job records say {v}")

    cache = doc.get("cache", {})
    cached_records = sum(1 for j in jobs if j["cached"])
    if cache.get("hits") != cached_records:
        errors.append(f"cache.hits {cache.get('hits')} != cached job records "
                      f"{cached_records}")
    executed_keys = {j["key"] for j in jobs if j["ok"] and not j["cached"]}
    if cache.get("misses", 0) < len(executed_keys):
        errors.append(f"cache.misses {cache.get('misses')} < distinct executed "
                      f"keys {len(executed_keys)}")

    # Deterministic caching: a cached record's bytes must equal the bytes of
    # the record that actually executed its key.
    executed = {}
    for j in jobs:
        if j["ok"] and not j["cached"]:
            executed.setdefault(j["key"], j["result"])
    for j in jobs:
        if not j["cached"]:
            continue
        fresh = executed.get(j["key"])
        if fresh is None:
            errors.append(f"job {j['id']}: cached but no executed record "
                          f"shares key {j['key']}")
        elif fresh != j["result"]:
            errors.append(f"job {j['id']}: cached result differs from the "
                          f"executed result for key {j['key']}")

    ok_keys = [j["key"] for j in jobs if j["ok"]]
    repeats = len(ok_keys) - len(set(ok_keys))
    if repeats > 0 and cache.get("hits", 0) == 0:
        errors.append(f"{repeats} repeated keys in the queue but cache.hits "
                      f"is 0")


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    with open(argv[1]) as f:
        schema = json.load(f)
    bad = 0
    for path in argv[2:]:
        with open(path) as f:
            doc = json.load(f)
        version = doc.get("schema_version")
        if version not in KNOWN_SCHEMA_VERSIONS:
            print(f"UNSUPPORTED {path}: schema_version {version!r} not in "
                  f"{sorted(KNOWN_SCHEMA_VERSIONS)}")
            return 2
        errors = []
        validate(doc, schema, schema, "$", errors)
        if not errors:
            cross_checks(doc, errors)
        if errors:
            bad += 1
            print(f"INVALID {path}")
            for e in errors:
                print(f"  {e}")
        else:
            jobs = doc["jobs"]
            hits = doc["cache"]["hits"]
            print(f"ok {path}: {len(jobs)} jobs, {hits} served from cache")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
