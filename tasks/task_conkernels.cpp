// Conkernels (Table I: concurrent kernel execution). Four one-block burn
// kernels over independent buffers: the naive submission queues them all on
// the default stream (they serialize), the optimized one gives each its own
// stream so they co-reside on disjoint SMs.

#include "core/conkernels.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kKernels = 4;
constexpr int kIters = 20000;
constexpr int kTpb = 256;
constexpr Real kMul = Real{1.0000001};
constexpr Real kAdd = Real{0.0000001};

class ConkernelsPlugin : public TaskPlugin {
 public:
  ConkernelsPlugin(std::string task, std::string name, bool concurrent)
      : TaskPlugin(std::move(task), std::move(name)), concurrent_(concurrent) {}

  void setup(GradeContext& ctx) override {
    const std::vector<Real>& h0 = ctx.data.f("v0");
    for (int i = 0; i < kKernels; ++i) bufs_.push_back(upload(ctx.rt, h0));
  }

  void launch(GradeContext& ctx) override {
    LaunchConfig cfg{Dim3{1}, Dim3{kTpb}, "burn"};
    for (int i = 0; i < kKernels; ++i) {
      DevSpan<Real> b = bufs_[static_cast<std::size_t>(i)];
      auto body = [=](WarpCtx& w) { return burn_kernel(w, b, kTpb, kIters); };
      if (concurrent_)
        ctx.rt.launch(ctx.rt.create_stream(), cfg, body);
      else
        ctx.rt.launch(cfg, body);
    }
  }

  std::vector<double> verify(GradeContext& ctx) override {
    std::vector<double> out;
    for (DevSpan<Real> b : bufs_) {
      std::vector<double> part = widen(fetch(ctx.rt, b));
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

 private:
  bool concurrent_;
  std::vector<DevSpan<Real>> bufs_;
};

class ConkernelsNaive : public ConkernelsPlugin {
 public:
  ConkernelsNaive(std::string t, std::string n)
      : ConkernelsPlugin(std::move(t), std::move(n), false) {}
};

class ConkernelsOptimized : public ConkernelsPlugin {
 public:
  ConkernelsOptimized(std::string t, std::string n)
      : ConkernelsPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_conkernels(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "conkernels";
  spec.title = "Four tiny burn kernels: let them run concurrently";
  spec.profile_name = "v100";
  spec.profile = [] { return vgpu::DeviceProfile::v100(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["v0"] = random_vector(kTpb, 81);
    d.num["kernels"] = kKernels;
    d.num["iters"] = kIters;
    return d;
  };
  spec.reference = [](const TaskData& d) {
    std::vector<Real> want = d.f("v0");
    for (Real& v : want)
      for (int k = 0; k < kIters; ++k)
        v = ((v * kMul + kAdd) * kMul + kAdd) * kMul + kAdd;
    std::vector<double> out;
    for (int i = 0; i < kKernels; ++i) {
      std::vector<double> part = widen(want);
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  };
  spec.tolerance = 0;
  spec.gating_rules = {"serial-small-kernels"};
  spec.baseline_submission = "conkernels.optimized";
  tasks.add(std::move(spec));

  add_plugin<ConkernelsNaive>(plugins, "conkernels", "conkernels.naive",
                              Expectation::kMustFail);
  add_plugin<ConkernelsOptimized>(plugins, "conkernels", "conkernels.optimized",
                                  Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
