// GSOverlap (global->shared copies, Ampere memcpy_async). Both submissions
// stage x and y tiles in shared memory before the AXPY; the naive one copies
// through registers, the optimized one issues hardware async copies and only
// stalls at pipeline_wait. Graded on the rtx3080 profile, where the hardware
// path exists.

#include "core/gsoverlap.hpp"
#include "tasks/task_common.hpp"

namespace cumb::gradetasks {

namespace {

constexpr int kN = 1 << 14;
constexpr int kTpb = 256;
constexpr Real kA = Real{2.0};

class GsoverlapPlugin : public TaskPlugin {
 public:
  GsoverlapPlugin(std::string task, std::string name, bool async)
      : TaskPlugin(std::move(task), std::move(name)), async_(async) {}

  void setup(GradeContext& ctx) override {
    x_ = upload(ctx.rt, ctx.data.f("x"));
    y_ = upload(ctx.rt, ctx.data.f("y0"));
  }

  void launch(GradeContext& ctx) override {
    DevSpan<Real> x = x_, y = y_;
    LaunchConfig cfg{Dim3{blocks_for(kN, kTpb)}, Dim3{kTpb},
                     async_ ? "axpy_staged_async" : "axpy_staged_sync"};
    if (async_)
      ctx.rt.launch(cfg,
                    [=](WarpCtx& w) { return axpy_staged_async(w, x, y, kN, kA); });
    else
      ctx.rt.launch(cfg,
                    [=](WarpCtx& w) { return axpy_staged_sync(w, x, y, kN, kA); });
  }

  std::vector<double> verify(GradeContext& ctx) override {
    return widen(fetch(ctx.rt, y_));
  }

 private:
  bool async_;
  DevSpan<Real> x_;
  DevSpan<Real> y_;
};

class GsoverlapNaive : public GsoverlapPlugin {
 public:
  GsoverlapNaive(std::string t, std::string n)
      : GsoverlapPlugin(std::move(t), std::move(n), false) {}
};

class GsoverlapOptimized : public GsoverlapPlugin {
 public:
  GsoverlapOptimized(std::string t, std::string n)
      : GsoverlapPlugin(std::move(t), std::move(n), true) {}
};

}  // namespace

void register_gsoverlap(TaskRegistry& tasks, PluginRegistry& plugins) {
  TaskSpec spec;
  spec.id = "gsoverlap";
  spec.title = "Shared-staged AXPY on Ampere: use memcpy_async";
  spec.profile_name = "rtx3080";
  spec.profile = [] { return vgpu::DeviceProfile::rtx3080(); };
  spec.make_inputs = [] {
    TaskData d;
    d.f32["x"] = random_vector(kN, 71);
    d.f32["y0"] = random_vector(kN, 72);
    d.num["n"] = kN;
    return d;
  };
  spec.reference = [](const TaskData& d) {
    std::vector<Real> y = d.f("y0");
    axpy_ref(d.f("x"), y, kA);
    return widen(y);
  };
  spec.tolerance = 0;
  spec.gating_rules = {"sync-staging-no-async"};
  spec.baseline_submission = "gsoverlap.optimized";
  tasks.add(std::move(spec));

  add_plugin<GsoverlapNaive>(plugins, "gsoverlap", "gsoverlap.naive",
                             Expectation::kMustFail);
  add_plugin<GsoverlapOptimized>(plugins, "gsoverlap", "gsoverlap.optimized",
                                 Expectation::kMustPass);
}

}  // namespace cumb::gradetasks
