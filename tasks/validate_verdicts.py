#!/usr/bin/env python3
"""Validate vgpu-grade verdict JSONs against tasks/verdict.schema.json.

Stdlib-only mini validator for the draft-07 subset the schema actually uses
(type/const/enum/required/properties/additionalProperties/items/minimum/
exclusiveMinimum/minLength/pattern/anyOf/allOf/not/if-then/$ref into
#/definitions). CI runners don't ship the jsonschema package, and verdicts
must stay verifiable with a bare python3.

Usage: validate_verdicts.py SCHEMA VERDICT.json [VERDICT.json ...]
"""

import json
import re
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def is_type(value, name):
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "integer":
        return (isinstance(value, int) and not isinstance(value, bool)) or (
            isinstance(value, float) and value.is_integer())
    return isinstance(value, TYPES[name])


def validate(value, schema, root, path, errors):
    if "$ref" in schema:
        ref = schema["$ref"]
        assert ref.startswith("#/"), ref
        target = root
        for part in ref[2:].split("/"):
            target = target[part]
        validate(value, target, root, path, errors)
        return

    t = schema.get("type")
    if t is not None:
        names = t if isinstance(t, list) else [t]
        if not any(is_type(value, n) for n in names):
            errors.append(f"{path}: expected type {t}, got {type(value).__name__}")
            return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']}")

    if isinstance(value, str):
        if len(value) < schema.get("minLength", 0):
            errors.append(f"{path}: shorter than minLength {schema['minLength']}")
        if "pattern" in schema and not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match /{schema['pattern']}/")

    if is_type(value, "number") and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
        if "exclusiveMinimum" in schema and value <= schema["exclusiveMinimum"]:
            errors.append(f"{path}: {value} <= exclusiveMinimum {schema['exclusiveMinimum']}")

    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required key {req!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], root, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                validate(sub, extra, root, f"{path}.{key}", errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], root, f"{path}[{i}]", errors)

    for sub in schema.get("allOf", []):
        validate(value, sub, root, path, errors)
    if "anyOf" in schema:
        for sub in schema["anyOf"]:
            branch = []
            validate(value, sub, root, path, branch)
            if not branch:
                break
        else:
            errors.append(f"{path}: no anyOf branch matched")
    if "not" in schema:
        inverse = []
        validate(value, schema["not"], root, path, inverse)
        if not inverse:
            errors.append(f"{path}: matches forbidden 'not' schema")
    if "if" in schema:
        cond = []
        validate(value, schema["if"], root, path, cond)
        if not cond and "then" in schema:
            validate(value, schema["then"], root, path, errors)
        if cond and "else" in schema:
            validate(value, schema["else"], root, path, errors)


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    with open(argv[1]) as f:
        schema = json.load(f)
    bad = 0
    for path in argv[2:]:
        with open(path) as f:
            doc = json.load(f)
        errors = []
        validate(doc, schema, schema, "$", errors)
        if errors:
            bad += 1
            print(f"INVALID {path}")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"ok {path}")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
