#pragma once

// Shared vocabulary of the shipped vgpu-grade task suite.
//
// Each tasks/task_<id>.cpp derives one grading task from a Table-I
// microbenchmark pair: the task spec reuses the benchmark's deterministic
// inputs and host reference, the naive half of the pair is registered as a
// must-fail submission and the optimized half as the must-pass baseline
// submission. Submissions are ordinary KernelPlugins written against the
// <vgpu.hpp> facade — exactly what an external author would write.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/common.hpp"
#include "grade/plugin.hpp"
#include "grade/task.hpp"
#include "linalg/generate.hpp"

namespace cumb::gradetasks {

using vgpu::grade::Expectation;
using vgpu::grade::GradeContext;
using vgpu::grade::KernelPlugin;
using vgpu::grade::PluginRegistry;
using vgpu::grade::TaskData;
using vgpu::grade::TaskRegistry;
using vgpu::grade::TaskSpec;

/// Base class carrying the registry identity, so concrete plugins only
/// implement the three hooks.
class TaskPlugin : public KernelPlugin {
 public:
  TaskPlugin(std::string task, std::string name)
      : task_(std::move(task)), name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  std::string_view task() const override { return task_; }

 private:
  std::string task_;
  std::string name_;
};

/// Register plugin type P (constructible from (task, name)) under `name`.
template <typename P>
void add_plugin(PluginRegistry& reg, const std::string& task,
                const std::string& name, Expectation expect) {
  reg.add(task, name, expect,
          [task, name] { return std::make_unique<P>(task, name); });
}

inline DevSpan<Real> upload(vgpu::Runtime& rt, const std::vector<Real>& h) {
  DevSpan<Real> d = rt.malloc<Real>(h.size());
  rt.memcpy_h2d(d, std::span<const Real>(h));
  return d;
}

inline DevSpan<int> upload_i(vgpu::Runtime& rt, const std::vector<int>& h) {
  DevSpan<int> d = rt.malloc<int>(h.size());
  rt.memcpy_h2d(d, std::span<const int>(h));
  return d;
}

inline std::vector<Real> fetch(vgpu::Runtime& rt, DevSpan<Real> d) {
  std::vector<Real> h(d.size());
  rt.memcpy_d2h(std::span<Real>(h), d);
  return h;
}

inline std::vector<int> fetch_i(vgpu::Runtime& rt, DevSpan<int> d) {
  std::vector<int> h(d.size());
  rt.memcpy_d2h(std::span<int>(h), d);
  return h;
}

inline std::vector<double> widen(const std::vector<Real>& v) {
  return std::vector<double>(v.begin(), v.end());
}

inline std::vector<double> widen_i(const std::vector<int>& v) {
  return std::vector<double>(v.begin(), v.end());
}

}  // namespace cumb::gradetasks
