// multi_tour — a deterministic tour of the vgpu-multi subsystem.
//
// Runs the three multi-GPU benchmark ports at 2 devices, demonstrates the
// peer-access lifecycle and a remote atomic through the DeviceSet API, and
// prints only simulated times and checksums — no wall clock — so two runs
// (at any VGPU_THREADS) must produce byte-identical stdout. CI relies on
// that: it byte-compares VGPU_THREADS=1 against VGPU_THREADS=8.
//
//   ./multi_tour [--devices=N] [--trace-out=FILE.json]
//
// The exit code asserts every variant verified bitwise against its host
// reference, so the tour doubles as a test.

#include <cstdio>
#include <cstring>
#include <span>
#include <string>

#include <vgpu.hpp>

#include "multi/ports.hpp"

namespace {

bool report(const cumb::MultiPairResult& r) {
  std::printf("%-22s devices=%d naive=%.3fus optimized=%.3fus speedup=%.2fx "
              "transfers=%d/%d checksum=%016llx %s\n",
              r.name.c_str(), r.devices, r.naive_us, r.optimized_us,
              r.speedup(), r.naive_transfers, r.optimized_transfers,
              static_cast<unsigned long long>(r.checksum),
              r.results_match() ? "verified" : "MISMATCH");
  return r.results_match();
}

}  // namespace

int main(int argc, char** argv) {
  int devices = 2;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--devices=", 10) == 0) {
      devices = std::atoi(argv[i] + 10);
      if (devices < 1 || devices > 64) {
        std::fprintf(stderr, "--devices out of range\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else {
      std::fprintf(stderr, "usage: multi_tour [--devices=N] [--trace-out=F]\n");
      return 2;
    }
  }

  vgpu::RuntimeOptions base = vgpu::RuntimeOptions::from_env();
  base.trace_path.clear();
  base.advise_json_path.clear();

  std::printf("== vgpu-multi tour: %d devices ==\n", devices);

  // --- Peer-access lifecycle + remote atomic through the raw API ------------
  {
    vgpu::RuntimeOptions o = base;
    o.devices = devices;
    if (devices > 1) o.topology = "nvlink:" + std::to_string(devices);
    if (!trace_out.empty()) {
      o.trace_path = trace_out;
      o.prof = vgpu::ProfMode::kTrace;
    }
    vgpu::DeviceSet set(o);
    std::printf("topology: %s\n", set.topology().to_string().c_str());
    if (devices > 1) {
      // Enabling twice reports the CUDA already-enabled code; transfers
      // before enablement would be host-staged.
      set.enable_peer_access(0, 1);
      vgpu::ErrorCode again = set.enable_peer_access(0, 1);
      std::printf("re-enable(0,1): %s\n", vgpu::error_name(again));
      set.enable_peer_access(1, 0);

      vgpu::DevSpan<int> counter = set.device(1).malloc<int>(1);
      set.device(1).memset(counter, 0);
      set.device(1).synchronize();
      set.set_device(0);
      int before = 0;
      for (int i = 0; i < 4; ++i)
        before = set.peer_atomic_add(1, counter, 0, 10);
      std::printf("peer_atomic_add: last_old=%d (expect 30)\n", before);
      if (before != 30) return 1;

      // One direct peer copy so the merged trace shows a MemCpy (PtoP) row.
      vgpu::DevSpan<int> mirror = set.device(0).malloc<int>(1);
      set.memcpy_peer(0, mirror, 1, counter, 1);
      int got = 0;
      std::span<int> one(&got, 1);
      set.device(0).memcpy_d2h(one, mirror);
      std::printf("peer copy-back: counter=%d (expect 40)\n", got);
      if (got != 40) return 1;
      set.set_device(0);
    }
  }

  // --- The three scale-out ports at the requested device count --------------
  bool ok = true;
  ok &= report(cumb::run_halo_exchange(base, devices, 1 << 14, 8));
  ok &= report(cumb::run_sharded_histogram(base, devices, 1 << 16, 128, 0.25));
  ok &= report(cumb::run_pipelined_matmul(base, devices, 96, 96, 96));
  if (!ok) {
    std::fprintf(stderr, "multi_tour: verification FAILED\n");
    return 1;
  }
  std::printf("all variants verified\n");
  return 0;
}
