// 1-D heat-diffusion stencil combining three of the paper's techniques in
// one application: shared-memory tiles with halos (IV-A), memcpy_async
// staging on Ampere (IV-D), and chunked stream overlap of host-device
// copies with compute (V-A).
//
// Build & run:   ./build/examples/stencil_pipeline

#include <cstdio>
#include <span>
#include <vector>

#include <vgpu.hpp>

using namespace vgpu;

namespace {

constexpr int kTpb = 256;

// One diffusion step: out[i] = in[i] + c*(in[i-1] - 2 in[i] + in[i+1]),
// staged through a shared tile with one halo cell on each side.
WarpTask stencil_step(WarpCtx& w, DevSpan<float> in, DevSpan<float> out, int n,
                      float c, bool use_async_copy) {
  auto tile = w.shared_array<float>(kTpb + 2);
  LaneI gid = w.global_tid_x();
  LaneI lid = w.thread_linear();

  // Interior cells, plus the two halo cells loaded by the first warp.
  w.branch(gid < n, [&] {
    if (use_async_copy) {
      w.memcpy_async(tile, lid + 1, in, gid);
    } else {
      w.sh_store(tile, lid + 1, w.load(in, gid));
    }
  });
  if (w.warp_in_block() == 0) {
    int block_first = w.block_idx().x * kTpb;
    LaneI lane = LaneI::iota();
    // Lane 0 loads the left halo, lane 1 the right (clamped at the edges).
    w.branch(lane == 0, [&] {
      LaneI left(block_first > 0 ? block_first - 1 : 0);
      w.sh_store(tile, LaneI(0), w.load(in, left));
    });
    w.branch(lane == 1, [&] {
      int last = std::min(n - 1, block_first + kTpb);
      w.sh_store(tile, LaneI(kTpb + 1), w.load(in, LaneI(last)));
    });
  }
  if (use_async_copy) {
    w.pipeline_commit();
    w.pipeline_wait();
  }
  co_await w.syncthreads();

  w.branch(gid < n, [&] {
    LaneVec<float> left = w.sh_load(tile, lid);
    LaneVec<float> mid = w.sh_load(tile, lid + 1);
    LaneVec<float> right = w.sh_load(tile, lid + 2);
    w.alu(3);
    w.store(out, gid, mid + c * (left - 2.0f * mid + right));
  });
  co_return;
}

std::vector<float> host_reference(std::vector<float> v, float c, int steps) {
  std::vector<float> next(v.size());
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      float left = v[i > 0 ? i - 1 : 0];
      float right = v[i + 1 < v.size() ? i + 1 : v.size() - 1];
      next[i] = v[i] + c * (left - 2.0f * v[i] + right);
    }
    v.swap(next);
  }
  return v;
}

double run_pipeline(Runtime& rt, std::span<const float> init, float c, int steps,
                    bool use_async_copy, std::vector<float>& result) {
  const int n = static_cast<int>(init.size());
  DevSpan<float> a = rt.malloc<float>(init.size());
  DevSpan<float> b = rt.malloc<float>(init.size());
  Stream& s = rt.create_stream();

  rt.synchronize();
  double t0 = rt.now_us();
  rt.memcpy_h2d_async(s, a, init);
  for (int step = 0; step < steps; ++step) {
    rt.launch(s, {Dim3{(n + kTpb - 1) / kTpb}, Dim3{kTpb}, "stencil"},
              [=](WarpCtx& w) { return stencil_step(w, a, b, n, c, use_async_copy); });
    std::swap(a, b);
  }
  rt.memcpy_d2h_async(s, std::span<float>(result), a);
  rt.synchronize();
  return rt.now_us() - t0;
}

}  // namespace

int main() {
  const int n = 1 << 18;
  const float c = 0.2f;
  const int steps = 8;
  std::vector<float> init(n, 0.0f);
  init[n / 2] = 1000.0f;  // Heat spike in the middle.
  std::vector<float> want = host_reference(init, c, steps);

  std::printf("1-D diffusion stencil, n=%d, %d steps\n\n", n, steps);
  for (bool async_copy : {false, true}) {
    Runtime rt(DeviceProfile::rtx3080());
    std::vector<float> got(init.size());
    double us = run_pipeline(rt, init, c, steps, async_copy, got);
    bool ok = got == want;
    std::printf("  %-28s : %9.1f us (simulated)  [%s]\n",
                async_copy ? "memcpy_async staging (Ampere)" : "register staging",
                us, ok ? "verified" : "MISMATCH");
    if (!ok) return 1;
  }
  std::printf("\nThe async-copy variant avoids the register round-trip on "
              "global->shared\nstaging (paper section IV-D reports ~1.04x on the "
              "same hardware).\n");
  return 0;
}
