// Stream compaction — keep only the elements that pass a predicate — built
// from the suite's primitives: warp ballots, shuffle-based prefix sums,
// shared-memory staging and one atomic block-offset reservation. This is
// the standard GPU pattern (cf. thrust::copy_if) and a good stress test of
// predication: every warp handles a different number of survivors.
//
// Build & run:   ./build/examples/stream_compaction

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "linalg/generate.hpp"
#include <vgpu.hpp>

using namespace vgpu;
using cumb::Real;

namespace {

constexpr int kTpb = 256;
constexpr int kWarps = kTpb / kWarpSize;

// Compact x[i] > threshold into out, preserving block-relative order.
WarpTask compact_kernel(WarpCtx& w, DevSpan<Real> x, DevSpan<Real> out,
                        DevSpan<int> out_count, int n, Real threshold) {
  auto warp_counts = w.shared_array<int>(kWarps);
  auto base_slot = w.shared_array<int>(1);
  auto stage = w.shared_array<Real>(kTpb);

  LaneI i = w.global_tid_x();
  LaneI lane = LaneI::iota();
  const int wid = w.warp_in_block();

  // 1. Each lane evaluates the predicate; the warp counts its survivors and
  //    computes each survivor's rank with an exclusive scan of the flags.
  LaneVec<Real> v(Real{0});
  Mask keep = 0;
  w.branch(i < n, [&] {
    LaneVec<Real> loaded = w.load(x, i);
    v = select(w.active(), loaded, v);
    keep = w.ballot(loaded > threshold);
  });
  LaneVec<int> flag(0);
  for (int l = 0; l < kWarpSize; ++l) flag[l] = lane_in(keep, l) ? 1 : 0;
  LaneVec<int> rank = warp_exclusive_scan_add(w, flag);
  int survivors = popcount(keep);

  // 2. Publish per-warp survivor counts; warp 0's lane pattern is irrelevant
  //    since every warp writes its own slot.
  w.branch(lane == 0, [&] { w.sh_store(warp_counts, LaneI(wid), LaneVec<int>(survivors)); });
  co_await w.syncthreads();

  // 3. Every warp reads all counts and derives its block-local offset; the
  //    first thread reserves the block's span in the output with one atomic.
  LaneVec<int> counts = w.sh_load(warp_counts, LaneI::iota() % kWarps);
  int block_total = 0, my_offset = 0;
  for (int k = 0; k < kWarps; ++k) {
    if (k < wid) my_offset += counts[k];
    block_total += counts[k];
  }
  w.branch(w.thread_linear() == 0, [&] {
    LaneVec<int> old = w.atomic_add(out_count, LaneI(0), LaneVec<int>(block_total));
    w.sh_store(base_slot, LaneI(0), old);
  });
  co_await w.syncthreads();
  LaneVec<int> base = w.sh_load(base_slot, LaneI(0));

  // 4. Survivors scatter to their final slots via shared staging.
  w.branch(keep, [&] {
    w.sh_store(stage, LaneI(my_offset) + rank, v);
  });
  co_await w.syncthreads();
  w.branch(w.thread_linear() < block_total, [&] {
    LaneI slot = w.thread_linear();
    w.store(out, base + slot, w.sh_load(stage, slot));
  });
  co_return;
}

}  // namespace

int main() {
  const int n = 1 << 18;
  const Real threshold = Real{0.75};
  Runtime rt(DeviceProfile::v100());

  auto hx = cumb::random_vector(n, 2026);
  auto x = rt.malloc<Real>(n);
  auto out = rt.malloc<Real>(n);
  auto count = rt.malloc<int>(1);
  rt.memcpy_h2d(x, std::span<const Real>(hx));
  rt.memset(count, 0);

  auto info = rt.launch({Dim3{n / kTpb}, Dim3{kTpb}, "compact"}, [=](WarpCtx& w) {
    return compact_kernel(w, x, out, count, n, threshold);
  });

  std::vector<int> got_count(1);
  rt.memcpy_d2h(std::span<int>(got_count), count);
  std::vector<Real> got(static_cast<std::size_t>(got_count[0]));
  rt.memcpy_d2h(std::span<Real>(got), out);

  // Verify as a multiset (blocks reserve output spans in atomic order).
  std::vector<Real> want;
  for (Real v : hx)
    if (v > threshold) want.push_back(v);
  std::vector<Real> a = got, b = want;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  bool ok = got_count[0] == static_cast<int>(want.size()) && a == b;

  std::printf("stream compaction of %d floats (keep > %.2f)\n", n, threshold);
  std::printf("  survivors         : %d of %d (%.1f%%)  [%s]\n", got_count[0], n,
              100.0 * got_count[0] / n, ok ? "verified" : "MISMATCH");
  std::printf("  kernel            : %.1f us (simulated)\n", info.duration_us());
  std::printf("  shuffles          : %llu   atomics: %llu   barriers: %llu\n",
              static_cast<unsigned long long>(info.stats.shuffles),
              static_cast<unsigned long long>(info.stats.atomic_ops),
              static_cast<unsigned long long>(info.stats.barriers));
  return ok ? 0 : 1;
}
