// Advisor tour: let vgpu-advise diagnose a kernel, apply its fix, and watch
// the finding disappear.
//
// Build & run:   ./build/examples/advisor_tour
//
// The advisor (src/advise/) watches the same activity stream the profiler
// records and runs one detector per CUDAMicroBench Table-I anti-pattern.
// This tour stages the CoMem pattern: an axpy whose threads each walk a
// private contiguous block. Every lane of a warp then reads a different
// 128-byte line per request — gld_transactions_per_request explodes — and
// the advisor points at the cyclic distribution that fixes it.

#include <cstdio>
#include <span>
#include <vector>

#include <vgpu.hpp>

using namespace vgpu;

namespace {

constexpr int kTpb = 256;
constexpr int kGrid = 16;

// Naive: thread t handles the contiguous block [t*chunk, (t+1)*chunk).
// Lanes of one warp sit `chunk` elements apart: uncoalesced.
WarpTask axpy_blocked(WarpCtx& w, DevSpan<float> x, DevSpan<float> y, int n,
                      float a) {
  LaneI i = w.global_tid_x();
  int chunk = n / w.total_threads_x();
  LaneI j = i * chunk;
  LaneI stop = j + chunk;
  w.alu(3);
  w.loop_while([&] { return (j < stop) & (j < n); },
               [&] {
                 LaneF xv = w.load(x, j);
                 LaneF yv = w.load(y, j);
                 w.alu(1);
                 w.store(y, j, yv + a * xv);
                 j += LaneI(1);
               });
  co_return;
}

// The advisor's remediation: cyclic distribution. Lane l reads element
// base+l, so a warp covers one 128-byte line per request.
WarpTask axpy_cyclic(WarpCtx& w, DevSpan<float> x, DevSpan<float> y, int n,
                     float a) {
  LaneI j = w.global_tid_x();
  int stride = w.total_threads_x();
  w.loop_while([&] { return j < n; },
               [&] {
                 LaneF xv = w.load(x, j);
                 LaneF yv = w.load(y, j);
                 w.alu(1);
                 w.store(y, j, yv + a * xv);
                 j += LaneI(stride);
               });
  co_return;
}

}  // namespace

int main() {
  Runtime rt(DeviceProfile::v100());
  rt.set_advise_mode(AdviseMode::kFull);  // Or VGPU_ADVISE=full in the env.

  const int n = 1 << 17;
  const float a = 2.0f;
  std::vector<float> hx(n, 1.0f), hy(n, 3.0f);

  DevSpan<float> x = rt.malloc<float>(n);
  DevSpan<float> y = rt.malloc<float>(n);
  rt.memcpy_h2d(x, std::span<const float>(hx));

  // --- Act 1: the anti-pattern -----------------------------------------------
  rt.memcpy_h2d(y, std::span<const float>(hy));
  rt.advise_phase("naive");
  LaunchInfo naive =
      rt.launch({Dim3{kGrid}, Dim3{kTpb}, "axpy_blocked"},
                [=](WarpCtx& w) { return axpy_blocked(w, x, y, n, a); });

  // --- Act 2: the advisor's fix ----------------------------------------------
  rt.advise_phase("");  // Keep the reset copy out of either evidence phase.
  rt.memcpy_h2d(y, std::span<const float>(hy));
  rt.advise_phase("fixed");
  LaunchInfo fixed =
      rt.launch({Dim3{kGrid}, Dim3{kTpb}, "axpy_cyclic"},
                [=](WarpCtx& w) { return axpy_cyclic(w, x, y, n, a); });

  // --- Act 3: read the verdict ----------------------------------------------
  std::printf("%s\n", rt.advisor()->report().c_str());

  int naive_findings = 0, fixed_findings = 0;
  for (const Advice& adv : rt.advisor()->analyze()) {
    if (adv.phase == "naive") ++naive_findings;
    if (adv.phase == "fixed") ++fixed_findings;
  }
  std::printf("findings: naive phase %d, fixed phase %d\n", naive_findings,
              fixed_findings);
  std::printf("gld_transactions_per_request: naive %.1f, fixed %.1f\n",
              static_cast<double>(naive.stats.gld_transactions) /
                  static_cast<double>(naive.stats.gld_requests),
              static_cast<double>(fixed.stats.gld_transactions) /
                  static_cast<double>(fixed.stats.gld_requests));
  std::printf("simulated time: naive %.1f us, fixed %.1f us (%.2fx)\n",
              naive.duration_us(), fixed.duration_us(),
              naive.duration_us() / fixed.duration_us());

  // The advisor already said its piece; silence the destructor re-flush.
  rt.set_advise_mode(AdviseMode::kOff);
  return (naive_findings > 0 && fixed_findings == 0) ? 0 : 1;
}
