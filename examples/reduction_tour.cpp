// A tour of GPU reduction strategies, combining three of the paper's themes
// (shared memory, bank conflicts, warp shuffles) with the atomics extension:
//
//   1. global atomics only            (maximum contention)
//   2. shared-memory tree, strided    (bank conflicts — Fig. 12's sum_bc)
//   3. shared-memory tree, sequential (conflict-free — Fig. 12's sum)
//   4. warp shuffles + one atomic     (register-only, cub-style)
//
// All four produce the same sum (verified against a double-precision host
// reference) and the simulated times rank exactly as the paper's sections
// III-IV predict.
//
// Build & run:   ./build/examples/reduction_tour

#include <cmath>
#include <cstdio>
#include <vector>

#include "linalg/generate.hpp"
#include <vgpu.hpp>

using namespace vgpu;
using cumb::Real;

namespace {

constexpr int kTpb = 256;

WarpTask reduce_atomic_only(WarpCtx& w, DevSpan<Real> x, DevSpan<Real> out, int n) {
  LaneI i = w.global_tid_x();
  w.branch(i < n, [&] { w.atomic_add(out, LaneI(0), w.load(x, i)); });
  co_return;
}

WarpTask reduce_shared(WarpCtx& w, DevSpan<Real> x, DevSpan<Real> out, int n,
                       bool strided) {
  auto cache = w.shared_array<Real>(kTpb);
  LaneI tid = w.global_tid_x();
  LaneI cid = w.thread_linear();
  w.sh_store(cache, cid, LaneVec<Real>(Real{0}));
  w.branch(tid < n, [&] { w.sh_store(cache, cid, w.load(x, tid)); });
  co_await w.syncthreads();
  if (strided) {
    for (int i = 1; i < kTpb; i *= 2) {
      LaneI index = cid * (2 * i);
      w.branch(index < kTpb, [&] {
        w.sh_store(cache, index,
                   w.sh_load(cache, index) + w.sh_load(cache, index + i));
      });
      co_await w.syncthreads();
    }
  } else {
    for (int i = kTpb / 2; i > 0; i /= 2) {
      w.branch(cid < i, [&] {
        w.sh_store(cache, cid, w.sh_load(cache, cid) + w.sh_load(cache, cid + i));
      });
      co_await w.syncthreads();
    }
  }
  w.branch(cid == 0, [&] { w.atomic_add(out, LaneI(0), w.sh_load(cache, cid)); });
  co_return;
}

WarpTask reduce_warp_ops(WarpCtx& w, DevSpan<Real> x, DevSpan<Real> out, int n) {
  LaneI tid = w.global_tid_x();
  LaneVec<Real> v(Real{0});
  w.branch(tid < n, [&] { v = select(w.active(), w.load(x, tid), v); });
  v = warp_reduce_add(w, v);
  w.branch(w.thread_linear() % kWarpSize == 0,
           [&] { w.atomic_add(out, LaneI(0), v); });
  co_return;
}

}  // namespace

int main() {
  const int n = 1 << 20;
  Runtime rt(DeviceProfile::v100());
  auto hx = cumb::random_vector(n, 777);
  double want = cumb::sum_ref(hx);
  auto x = rt.malloc<Real>(n);
  auto out = rt.malloc<Real>(1);
  rt.memcpy_h2d(x, std::span<const Real>(hx));

  struct Variant {
    const char* name;
    KernelFn fn;
  };
  const Variant variants[] = {
      {"global atomics only",
       [=](WarpCtx& w) { return reduce_atomic_only(w, x, out, n); }},
      {"shared tree, strided (bank conflicts)",
       [=](WarpCtx& w) { return reduce_shared(w, x, out, n, true); }},
      {"shared tree, sequential (conflict-free)",
       [=](WarpCtx& w) { return reduce_shared(w, x, out, n, false); }},
      {"warp shuffles + one atomic per warp",
       [=](WarpCtx& w) { return reduce_warp_ops(w, x, out, n); }},
  };

  std::printf("sum of %d floats on %s\n\n", n, rt.profile().name.c_str());
  std::printf("%-42s %12s %10s %12s\n", "variant", "sim time", "verify",
              "atomics");
  for (const Variant& v : variants) {
    rt.memset(out, Real{0});
    auto info = rt.launch({Dim3{n / kTpb}, Dim3{kTpb}, v.name}, v.fn);
    std::vector<Real> result(1);
    rt.memcpy_d2h(std::span<Real>(result), out);
    bool ok = std::abs(result[0] - want) <= 1e-3 * std::abs(want);
    std::printf("%-42s %9.1f us %10s %12llu\n", v.name, info.duration_us(),
                ok ? "OK" : "MISMATCH",
                static_cast<unsigned long long>(info.stats.atomic_ops));
    if (!ok) return 1;
  }
  std::printf("\nEach step removes a serialization: atomics -> shared memory, "
              "conflicts -> none,\nshared round-trips -> registers (paper "
              "sections IV-A, IV-E, IV-F).\n");
  return 0;
}
