// Adaptive Mandelbrot rendering with dynamic parallelism (paper section
// III-B). Renders a small ASCII view, then compares the escape-time kernel
// against Mariani-Silver subdivision with device-side launches across image
// sizes — the Fig. 5 experiment as a runnable program.
//
// Build & run:   ./build/examples/adaptive_mandelbrot

#include <cstdio>
#include <vector>

#include "core/dynparallel.hpp"
#include <vgpu.hpp>

using namespace cumb;
using vgpu::DeviceProfile;

namespace {

void render_ascii(int size, int max_iter) {
  MandelFrame f;
  f.scale = 3.0f / static_cast<float>(size);
  std::vector<int> dwell = mandel_ref(size, size, f, max_iter);
  const char* shades = " .:-=+*#%@";
  for (int y = 0; y < size; y += size / 24) {
    for (int x = 0; x < size; x += size / 48) {
      int d = dwell[static_cast<std::size_t>(y) * size + x];
      int shade = d >= max_iter ? 9 : (d * 9) / max_iter;
      std::putchar(shades[shade]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  std::printf("Mandelbrot set, standard frame [-2,1]x[-1.5,1.5]:\n\n");
  render_ascii(192, 64);

  std::printf("\nescape-time vs Mariani-Silver (dynamic parallelism), "
              "12-SM RTX 3080 scale model:\n");
  std::printf("%8s %14s %14s %9s %9s %11s\n", "size", "escape(us)", "ms+dp(us)",
              "speedup", "launches", "mismatches");
  for (int size : {128, 256, 512, 1024}) {
    Runtime rt(DeviceProfile::rtx3080_scaled());
    auto r = run_dynparallel(rt, size, /*max_iter=*/1024);
    std::printf("%8d %14.1f %14.1f %9.2f %9llu %11lld\n", size, r.naive_us,
                r.optimized_us, r.speedup(),
                static_cast<unsigned long long>(r.device_launches),
                r.mismatched_pixels);
  }
  std::printf("\nThe crossover mirrors Fig. 5: device-launch overhead dominates "
              "small images;\nthe saved interior computation wins as the image "
              "grows (paper: 3.26x at 16000^2).\n");
  return 0;
}
