// Quickstart: write a kernel, offload it, read the profiler counters.
//
// Build & run:   ./build/examples/quickstart
//
// The simulator's programming model mirrors CUDA: a kernel is a coroutine
// executed per *warp*, LaneVec<T> values are warp registers, w.branch() is
// an if over the lanes, and rt.launch() is <<<grid, block>>>. Times below
// are simulated microseconds from the vgpu timing model.

#include <cstdio>
#include <numeric>
#include <span>
#include <vector>

#include <vgpu.hpp>

using namespace vgpu;

// y[i] = a*x[i] + y[i] — the "hello world" of GPU kernels.
WarpTask saxpy(WarpCtx& w, DevSpan<float> x, DevSpan<float> y, int n, float a) {
  LaneI i = w.global_tid_x();
  w.branch(i < n, [&] {
    LaneVec<float> xv = w.load(x, i);
    LaneVec<float> yv = w.load(y, i);
    w.alu(1);
    w.store(y, i, a * xv + yv);
  });
  co_return;
}

int main() {
  Runtime rt(DeviceProfile::v100());
  std::printf("device: %s (%d SMs, %.0f GB/s)\n\n", rt.profile().name.c_str(),
              rt.profile().sm_count, rt.profile().dram_bw_gbps);

  const int n = 1 << 20;
  const float a = 2.0f;
  std::vector<float> hx(n), hy(n, 1.0f);
  std::iota(hx.begin(), hx.end(), 0.0f);

  // Allocate device memory and copy the inputs (cudaMalloc / cudaMemcpy).
  DevSpan<float> x = rt.malloc<float>(n);
  DevSpan<float> y = rt.malloc<float>(n);
  auto h2d_span = rt.memcpy_h2d(x, std::span<const float>(hx));
  rt.memcpy_h2d(y, std::span<const float>(hy));

  // Launch with a 1-D grid of 256-thread blocks.
  LaunchInfo info = rt.launch({Dim3{n / 256}, Dim3{256}, "saxpy"},
                              [=](WarpCtx& w) { return saxpy(w, x, y, n, a); });

  // Copy the result back and verify.
  std::vector<float> out(n);
  rt.memcpy_d2h(std::span<float>(out), y);
  for (int i = 0; i < n; ++i)
    if (out[i] != a * hx[i] + 1.0f) {
      std::printf("MISMATCH at %d\n", i);
      return 1;
    }

  std::printf("saxpy on %d elements: verified OK\n", n);
  std::printf("  H2D copy          : %8.2f us (simulated)\n", h2d_span.duration());
  std::printf("  kernel            : %8.2f us (simulated)\n", info.duration_us());
  std::printf("profiler counters (nvprof-style):\n");
  std::printf("  gld_requests      : %8llu\n",
              static_cast<unsigned long long>(info.stats.gld_requests));
  std::printf("  gld_transactions  : %8llu (128-byte lines)\n",
              static_cast<unsigned long long>(info.stats.gld_transactions));
  std::printf("  dram_read         : %8.2f MiB\n",
              static_cast<double>(info.stats.dram_read_bytes) / (1 << 20));
  std::printf("  warp_exec_eff     : %8.2f %%\n",
              info.stats.warp_execution_efficiency());
  return 0;
}
