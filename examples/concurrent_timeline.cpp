// The paper's Fig. 6 as a runnable program: launch the same small kernels
// serially and concurrently, and render the nvvp-style execution timelines
// the paper screenshots — plus a pipelined-offload trace showing copy/compute
// overlap (Fig. 14's mechanism).
//
// Build & run:   ./build/examples/concurrent_timeline

#include <cstdio>
#include <vector>

#include "core/comem.hpp"
#include "core/conkernels.hpp"
#include "linalg/generate.hpp"
#include <vgpu.hpp>

using namespace vgpu;
using cumb::Real;

namespace {

void launch_burners(Runtime& rt, int kernels, bool concurrent) {
  std::vector<DevSpan<Real>> bufs;
  auto h0 = cumb::random_vector(256, 1);
  for (int i = 0; i < kernels; ++i) {
    bufs.push_back(rt.malloc<Real>(256));
    rt.memcpy_h2d(bufs.back(), std::span<const Real>(h0));
  }
  std::vector<Stream*> streams;
  for (int i = 0; i < kernels; ++i)
    streams.push_back(concurrent ? &rt.create_stream() : &rt.default_stream());
  for (int i = 0; i < kernels; ++i) {
    DevSpan<Real> b = bufs[static_cast<std::size_t>(i)];
    rt.launch(*streams[static_cast<std::size_t>(i)],
              {Dim3{1}, Dim3{256}, "burn"},
              [=](WarpCtx& w) { return cumb::burn_kernel(w, b, 256, 20000); });
  }
  rt.synchronize();
}

}  // namespace

int main() {
  for (bool concurrent : {true, false}) {
    Runtime rt(DeviceProfile::v100());
    TraceRecorder trace;
    rt.timeline().set_trace(&trace);
    launch_burners(rt, 8, concurrent);
    std::printf("(%c) %s kernel launches:\n", concurrent ? 'a' : 'b',
                concurrent ? "concurrent (one stream per kernel)" : "serial");
    std::printf("%s\n", trace.render_gantt(96).c_str());
  }

  // Bonus: the Fig. 14 mechanism — chunked copies overlapping compute.
  Runtime rt(DeviceProfile::v100());
  TraceRecorder trace;
  rt.timeline().set_trace(&trace);
  const int n = 1 << 20, chunks = 4;
  auto hx = cumb::random_vector(n, 2);
  auto x = rt.malloc<Real>(n);
  std::vector<Real> back(n);
  std::vector<Stream*> ss;
  for (int i = 0; i < chunks; ++i) ss.push_back(&rt.create_stream());
  for (int c = 0; c < chunks; ++c) {
    Stream& s = *ss[static_cast<std::size_t>(c)];
    std::size_t off = static_cast<std::size_t>(c) * (n / chunks);
    auto xc = x.subspan(off, n / chunks);
    rt.memcpy_h2d_async(s, xc, std::span<const Real>(hx).subspan(off, n / chunks));
    rt.launch(s, {Dim3{n / chunks / 256}, Dim3{256}, "axpy"},
              [=](WarpCtx& w) {
                return cumb::axpy_1per_thread(w, xc, xc, n / chunks, Real{1});
              });
    rt.memcpy_d2h_async(s, std::span<Real>(back).subspan(off, n / chunks), xc);
  }
  rt.synchronize();
  std::printf("pipelined offload (chunked copies overlap compute and the "
              "return copies):\n%s\n", trace.render_gantt(96).c_str());
  return 0;
}
