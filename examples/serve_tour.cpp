// serve_tour: three tenants sharing one vgpu-serve JobServer.
//
// Demonstrates the PR-8 API end to end:
//
//   * RuntimeOptions as an explicit value — each tenant runs under a
//     different configuration (exact+checked, fast, exact+unchecked) in the
//     SAME process, something the env-var-only configuration could never
//     express;
//   * fair multi-tenant scheduling — jobs dispatch round-robin across
//     tenants regardless of submission bursts;
//   * deterministic result caching — repeat jobs are served from the
//     content-addressed cache, and the served bytes are PROVEN identical to
//     a fresh uncached simulation by re-running each cached job directly
//     against the registry.
//
// Exit 0 when every job completed, at least 30% of repeat submissions were
// served from cache (the parking contract actually makes it 100%), and every
// cached blob is byte-identical to its uncached recomputation.

#include <cstdio>
#include <string>
#include <vector>

#include "serve/server.hpp"

using vgpu::serve::JobServer;
using vgpu::serve::JobSpec;
using vgpu::serve::KernelRegistry;

int main() {
  KernelRegistry registry = KernelRegistry::builtin();

  // Three tenants, three configurations sharing one process.
  vgpu::RuntimeOptions ci = vgpu::RuntimeOptions::defaults();
  ci.check = vgpu::CheckMode::kFull;

  vgpu::RuntimeOptions sweep = vgpu::RuntimeOptions::defaults();
  sweep.fidelity = vgpu::Fidelity::kFast;

  vgpu::RuntimeOptions batch = vgpu::RuntimeOptions::defaults();

  JobServer server(registry, {/*workers=*/3, /*cache_capacity=*/64,
                              /*serialize_default_threads=*/true});

  // Each tenant submits a burst; half of each burst repeats earlier work.
  const char* kernels[] = {"bench:comem", "bench:warpdiv", "bench:bankredux",
                           "bench:shuffle"};
  int repeats = 0;
  for (int round = 0; round < 3; ++round) {
    for (const char* k : kernels) {
      server.submit({"ci", k, 0, ci});
      server.submit({"sweep", k, 0, sweep});
      server.submit({"batch", k, 0, batch});
      if (round > 0) repeats += 3;  // Rounds 1-2 resubmit round 0's work.
    }
  }

  server.run();

  int completed = 0, cached = 0, byte_identical = 0, mismatched = 0;
  for (const auto& rec : server.records()) {
    if (rec.ok) ++completed;
    if (!rec.cached) continue;
    ++cached;
    // The headline property: a cache hit serves the same bytes a fresh
    // simulation would produce.
    std::string fresh = registry.run(rec.spec.kernel, rec.resolved_n,
                                     server.exec_options(rec.spec));
    if (fresh == rec.blob) ++byte_identical; else ++mismatched;
  }

  const auto& cache = server.cache();
  std::printf("serve_tour: %zu jobs from 3 tenants, %d repeats\n",
              server.records().size(), repeats);
  std::printf("  completed: %d, served from cache: %d (hits=%llu misses=%llu)\n",
              completed, cached,
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));
  std::printf("  cached blobs byte-identical to uncached reruns: %d/%d\n",
              byte_identical, cached);
  for (const auto& [tenant, s] : server.tenant_stats())
    std::printf("  tenant %-6s submitted=%llu completed=%llu cached=%llu\n",
                tenant.c_str(), static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.cached));

  bool ok = completed == static_cast<int>(server.records().size()) &&
            repeats > 0 && cached * 10 >= repeats * 3 &&  // >= 30% of repeats.
            mismatched == 0;
  std::printf("%s\n", ok ? "SERVE TOUR PASSED" : "SERVE TOUR FAILED");
  return ok ? 0 : 1;
}
