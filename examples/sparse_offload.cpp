// Sparse matrix-vector offload (paper section V-D) as an application: build
// a synthetic sparse matrix, offload it dense and CSR, and report where the
// time goes (transfer vs kernel) for each format and sparsity level.
//
// Build & run:   ./build/examples/sparse_offload

#include <cstdio>

#include "core/minitransfer.hpp"
#include "linalg/generate.hpp"
#include <vgpu.hpp>

using namespace cumb;
using vgpu::DeviceProfile;

int main() {
  const int n = 1024;
  std::printf("SpMV offload, %dx%d matrix, V100 profile\n", n, n);
  std::printf("%12s %12s %12s %12s %12s %9s\n", "nnz", "dense(us)", "csr(us)",
              "dense MB", "csr MB", "speedup");

  for (long long frac : {4, 16, 64, 256, 1024}) {
    long long nnz = static_cast<long long>(n) * n / frac;
    Runtime rt(DeviceProfile::v100());
    auto r = run_minitransfer(rt, n, nnz);
    if (!r.results_match) {
      std::printf("verification FAILED at nnz=%lld\n", nnz);
      return 1;
    }
    std::printf("%12lld %12.1f %12.1f %12.2f %12.2f %9.2f\n", nnz, r.naive_us,
                r.optimized_us, static_cast<double>(r.dense_bytes) / (1 << 20),
                static_cast<double>(r.csr_bytes) / (1 << 20), r.speedup());
  }

  std::printf("\nThe dense offload pays the full n^2 transfer regardless of "
              "sparsity; CSR's\nbytes shrink with nnz, so its advantage grows "
              "unboundedly (paper: 190x at 10240^2).\n");
  return 0;
}
