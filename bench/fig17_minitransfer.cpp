// Fig. 17: SpMV offload, dense format vs CSR, sweeping the number of
// non-zeros of a fixed-size matrix. Paper: 10240^2 matrix, CSR wins by up to
// ~190x as the matrix gets sparser (scaled to 2048^2 here; the transfer
// ratio, which drives the result, scales with n^2/nnz identically).

#include "bench_common.hpp"
#include "core/minitransfer.hpp"

namespace {

constexpr int kN = 2048;

void Fig17_MiniTransfer(benchmark::State& state) {
  long long nnz = state.range(0);
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_minitransfer(rt, kN, nnz);
    cumbench::export_pair(state, r);
    state.counters["nnz"] = static_cast<double>(r.nnz);
    state.counters["dense_MB"] = static_cast<double>(r.dense_bytes) / (1 << 20);
    state.counters["csr_MB"] = static_cast<double>(r.csr_bytes) / (1 << 20);
    state.counters["dense_kernel_ms"] = r.dense_kernel_us * 1e-3;
    state.counters["csr_kernel_ms"] = r.csr_kernel_us * 1e-3;
  }
}

}  // namespace

BENCHMARK(Fig17_MiniTransfer)
    ->Arg(static_cast<long long>(kN) * kN / 4)
    ->Arg(static_cast<long long>(kN) * kN / 16)
    ->Arg(static_cast<long long>(kN) * kN / 64)
    ->Arg(static_cast<long long>(kN) * 64)
    ->Arg(static_cast<long long>(kN) * 4)
    ->Iterations(1);

CUMB_BENCH_MAIN("Fig. 17 - MiniTransfer (SpMV: dense vs CSR offload)",
                "CSR advantage grows with sparsity, up to ~190x at 10240^2")
