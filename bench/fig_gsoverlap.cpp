// Section IV-D: shared-memory staging via memcpy_async (Ampere) vs the
// synchronous register path. Paper: ~1.04x on RTX 3080; the pre-Ampere V100
// profile degrades memcpy_async to the software path (speedup ~1).

#include "bench_common.hpp"
#include "core/gsoverlap.hpp"

namespace {

void run_profile(benchmark::State& state, const vgpu::DeviceProfile& p) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(p);
    auto r = cumb::run_gsoverlap(rt, n);
    cumbench::export_pair(state, r);
  }
}

void GsOverlap_RTX3080(benchmark::State& state) {
  run_profile(state, cumbench::DeviceProfile::rtx3080());
}
void GsOverlap_V100_NoHwAsync(benchmark::State& state) {
  run_profile(state, cumbench::DeviceProfile::v100());
}

}  // namespace

BENCHMARK(GsOverlap_RTX3080)->RangeMultiplier(4)->Range(1 << 18, 1 << 22)->Iterations(1);
BENCHMARK(GsOverlap_V100_NoHwAsync)->RangeMultiplier(4)->Range(1 << 18, 1 << 22)->Iterations(1);

CUMB_BENCH_MAIN("Sec. IV-D - GSOverlap (memcpy_async global->shared)",
                "async kernel ~1.04x on RTX 3080; no gain without Ampere hardware")
