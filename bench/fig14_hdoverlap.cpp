// Fig. 14: AXPY offload with synchronous copies vs chunked cudaMemcpyAsync
// over multiple streams. Paper: small gain (1.036x best) because AXPY's 1:1
// compute-to-transfer ratio leaves little to overlap.

#include "bench_common.hpp"
#include "core/hdoverlap.hpp"

namespace {

void Fig14_HdOverlap(benchmark::State& state) {
  int chunks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_hdoverlap(rt, 1 << 20, chunks, /*streams=*/4);
    cumbench::export_pair(state, r);
    state.counters["chunks"] = chunks;
  }
}

}  // namespace

BENCHMARK(Fig14_HdOverlap)->RangeMultiplier(2)->Range(1, 16)->Iterations(1);

CUMB_BENCH_MAIN("Fig. 14 - HDOverlap (streams + cudaMemcpyAsync)",
                "small improvement (1.036x best) for transfer-dominated AXPY")
