// Fig. 5: Mariani-Silver with dynamic parallelism vs escape time, image-size
// sweep. Paper: RTX 3080, 2000^2..16000^2, speedup grows to 3.26x and drops
// below 1 at the smallest image. We scale both the image and the GPU (12-SM
// profile) to keep the blocks-per-SM ratio in the paper's saturated regime.

#include "bench_common.hpp"
#include "core/dynparallel.hpp"

namespace {

void Fig05_DynParallel(benchmark::State& state) {
  int size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::rtx3080_scaled());
    auto r = cumb::run_dynparallel(rt, size, /*max_iter=*/1024);
    cumbench::export_pair(state, r);
    state.counters["device_launches"] = static_cast<double>(r.device_launches);
    state.counters["mismatched_pixels"] = static_cast<double>(r.mismatched_pixels);
  }
}

}  // namespace

BENCHMARK(Fig05_DynParallel)->RangeMultiplier(2)->Range(128, 1024)->Iterations(1);

CUMB_BENCH_MAIN("Fig. 5 - DynParallel (Mandelbrot, dynamic parallelism)",
                "3.26x at 16000^2, overhead dominates at 2000^2; gain grows with size")
