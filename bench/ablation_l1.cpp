// Ablation: the role of the L1 cache in the MemAlign and CoMem results.
// Toggling l1_enabled_for_global on the V100 profile isolates the mechanism
// the paper attributes the small misalignment penalty to (section IV-C).

#include "bench_common.hpp"
#include "core/comem.hpp"
#include "core/memalign.hpp"

namespace {

vgpu::DeviceProfile profile_with_l1(bool enabled) {
  auto p = cumbench::DeviceProfile::v100();
  p.l1_enabled_for_global = enabled;
  return p;
}

void Ablate_MemAlign_L1(benchmark::State& state) {
  bool l1 = state.range(0) != 0;
  for (auto _ : state) {
    cumbench::Runtime rt(profile_with_l1(l1));
    auto r = cumb::run_memalign(rt, 1 << 20);
    cumbench::export_pair(state, r);
    state.counters["l1_enabled"] = l1 ? 1 : 0;
  }
}

void Ablate_CoMem_L1(benchmark::State& state) {
  bool l1 = state.range(0) != 0;
  for (auto _ : state) {
    cumbench::Runtime rt(profile_with_l1(l1));
    auto r = cumb::run_comem(rt, 1 << 21, 1024);
    cumbench::export_pair(state, r);
    state.counters["l1_enabled"] = l1 ? 1 : 0;
  }
}

}  // namespace

BENCHMARK(Ablate_MemAlign_L1)->Arg(0)->Arg(1)->Iterations(1);
BENCHMARK(Ablate_CoMem_L1)->Arg(0)->Arg(1)->Iterations(1);

CUMB_BENCH_MAIN("Ablation - L1 cache for global loads",
                "misalignment penalty shrinks with an L1; uncoalesced penalty persists")
