// Fig. 6: serial vs concurrent execution of independent small kernels.
// Paper: ~7x with 8 concurrent kernels on V100.

#include "bench_common.hpp"
#include "core/conkernels.hpp"

namespace {

void Fig06_ConKernels(benchmark::State& state) {
  int kernels = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_conkernels(rt, kernels, /*iters=*/20000);
    cumbench::export_pair(state, r);
    state.counters["kernels"] = kernels;
  }
}

}  // namespace

BENCHMARK(Fig06_ConKernels)->DenseRange(2, 16, 2)->Iterations(1);

CUMB_BENCH_MAIN("Fig. 6 - Conkernels (concurrent kernel execution)",
                "~7x with 8 concurrent kernels vs serial launching")
