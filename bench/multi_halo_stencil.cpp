// Multi-GPU port: halo-exchange stencil (vgpu-multi scale-out pair).
//
// A 1-D 3-point diffusion stencil row-sharded across N devices; every step
// exchanges one-cell halos between neighbors. The exchange is tiny and
// latency-bound, so host-staging it (naive: peer access never enabled) pays
// two PCIe traversals plus a host round-trip per boundary per step, while
// the optimized variant rides the interconnect directly. Strong scaling
// fixes the domain; weak scaling grows it with the device count.

#include "bench_common.hpp"
#include "multi/ports.hpp"

namespace {

constexpr int kStrongCells = 1 << 18;
constexpr int kWeakCellsPerDevice = 1 << 16;
constexpr int kSteps = 24;

void export_multi(benchmark::State& state, const cumb::MultiPairResult& r) {
  state.counters["devices"] = r.devices;
  state.counters["naive_sim_ms"] = r.naive_us * 1e-3;
  state.counters["optimized_sim_ms"] = r.optimized_us * 1e-3;
  state.counters["speedup"] = r.speedup();
  state.counters["verified"] = r.results_match() ? 1 : 0;
  state.counters["peer_transfers"] = r.optimized_transfers;
}

void Multi_HaloStencil_Strong(benchmark::State& state) {
  int devices = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = cumb::run_halo_exchange(vgpu::ambient_options(), devices,
                                     kStrongCells, kSteps);
    export_multi(state, r);
  }
}

void Multi_HaloStencil_Weak(benchmark::State& state) {
  int devices = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = cumb::run_halo_exchange(vgpu::ambient_options(), devices,
                                     kWeakCellsPerDevice * devices, kSteps);
    export_multi(state, r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  cumbench::consume_prof_flags(&argc, argv);
  cumbench::banner(
      "Multi-GPU - halo-exchange stencil (staged vs peer-to-peer halos)",
      "P2P halo exchange removes the host bounce from every step boundary");
  // --devices=N pins the sweep to one count; default sweeps the curve.
  std::vector<int> counts = cumbench::device_count() != 1
                                ? std::vector<int>{cumbench::device_count()}
                                : std::vector<int>{1, 2, 4};
  for (int d : counts) {
    benchmark::RegisterBenchmark("Multi_HaloStencil_Strong",
                                 Multi_HaloStencil_Strong)
        ->Arg(d)
        ->Iterations(1);
    benchmark::RegisterBenchmark("Multi_HaloStencil_Weak",
                                 Multi_HaloStencil_Weak)
        ->Arg(d)
        ->Iterations(1);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
