// Fig. 9: AXPY with block vs cyclic loop distribution, <<<1024,256>>>.
// Paper: cyclic (coalesced) ~18x faster than block (uncoalesced) on V100.

#include "bench_common.hpp"
#include "core/comem.hpp"

namespace {

void Fig09_CoMem(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_comem(rt, n, /*grid_blocks=*/1024);
    cumbench::export_pair(state, r);
    state.counters["gather_sim_ms"] = r.gather_us * 1e-3;
    state.counters["block_gld_txn"] = static_cast<double>(r.block_transactions);
    state.counters["cyclic_gld_txn"] = static_cast<double>(r.cyclic_transactions);
  }
}

}  // namespace

BENCHMARK(Fig09_CoMem)->RangeMultiplier(2)->Range(1 << 20, 1 << 23)->Iterations(1);

CUMB_BENCH_MAIN("Fig. 9 - CoMem (coalesced vs uncoalesced AXPY)",
                "cyclic ~18x faster than block distribution, <<<1024,256>>>")
