// Fig. 9: AXPY with block vs cyclic loop distribution, <<<1024,256>>>.
// Paper: cyclic (coalesced) ~18x faster than block (uncoalesced) on V100.
//
// The host driver below is the worked demonstration of the CUDA-spelled shim
// (<vgpu/cuda_names.hpp>): it is a near-verbatim port of the paper's CUDA
// host code — cudaMalloc/cudaMemcpy byte counts, <<<grid,block>>> spelled as
// CUDA_KERNEL_LAUNCH, cudaEvent timing — running the same kernels as
// cumb::run_comem. tests/cuda_names_test.cpp asserts both drivers agree on
// every counter.

#include <vgpu/cuda_names.hpp>

#include <vector>

#include "bench_common.hpp"
#include "core/comem.hpp"
#include "linalg/generate.hpp"

namespace {

using cumb::axpy_block;
using cumb::axpy_cyclic;
using cumb::axpy_gather;
using cumb::Real;
using namespace vgpu::cuda;

/// run_comem, rewritten the way the paper's artifact writes it.
cumb::CoMemResult run_comem_cuda_style(cumb::Runtime& runtime, int n,
                                       int grid_blocks) {
  CudaContext ctx(runtime);
  constexpr int kTpb = 256;
  const Real a = Real{2.5};
  const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(Real);

  auto hx = cumb::random_vector(static_cast<std::size_t>(n), 21);
  auto hy0 = cumb::random_vector(static_cast<std::size_t>(n), 22);
  auto perm = cumb::random_permutation(n, 23);

  vgpu::DevSpan<Real> x, y;
  vgpu::DevSpan<int> p;
  cudaMalloc(&x, bytes);
  cudaMalloc(&y, bytes);
  cudaMalloc(&p, static_cast<std::size_t>(n) * sizeof(int));
  cudaMemcpy(x, hx.data(), bytes, cudaMemcpyHostToDevice);
  cudaMemcpy(p, perm.data(), static_cast<std::size_t>(n) * sizeof(int),
             cudaMemcpyHostToDevice);

  std::vector<Real> want = hy0;
  cumb::axpy_ref(hx, want, a);

  cumb::CoMemResult r;
  r.name = "CoMem";
  std::vector<Real> got(static_cast<std::size_t>(n));

  cudaMemcpy(y, hy0.data(), bytes, cudaMemcpyHostToDevice);
  CUDA_KERNEL_LAUNCH(axpy_block, grid_blocks, kTpb, nullptr, x, y, n, a);
  vgpu::LaunchInfo blk = last_launch();
  cudaMemcpy(got.data(), y, bytes, cudaMemcpyDeviceToHost);
  bool blk_ok = cumb::max_abs_diff(got, want) == 0;

  cudaMemcpy(y, hy0.data(), bytes, cudaMemcpyHostToDevice);
  CUDA_KERNEL_LAUNCH(axpy_cyclic, grid_blocks, kTpb, nullptr, x, y, n, a);
  vgpu::LaunchInfo cyc = last_launch();
  cudaMemcpy(got.data(), y, bytes, cudaMemcpyDeviceToHost);
  bool cyc_ok = cumb::max_abs_diff(got, want) == 0;

  cudaMemcpy(y, hy0.data(), bytes, cudaMemcpyHostToDevice);
  cudaEvent_t start, stop;
  cudaEventCreate(&start);
  cudaEventCreate(&stop);
  cudaEventRecord(start);
  CUDA_KERNEL_LAUNCH(axpy_gather, grid_blocks, kTpb, nullptr, x, y, p, n, a);
  cudaEventRecord(stop);
  cudaDeviceSynchronize();
  float gather_ms = 0;
  cudaEventElapsedTime(&gather_ms, start, stop);

  r.naive_us = blk.duration_us();
  r.optimized_us = cyc.duration_us();
  r.gather_us = static_cast<double>(gather_ms) * 1e3;
  r.results_match = blk_ok && cyc_ok;
  r.naive_stats = blk.stats;
  r.optimized_stats = cyc.stats;
  r.block_transactions = blk.stats.gld_transactions;
  r.cyclic_transactions = cyc.stats.gld_transactions;
  return r;
}

void Fig09_CoMem(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = run_comem_cuda_style(rt, n, /*grid_blocks=*/1024);
    cumbench::export_pair(state, r);
    state.counters["gather_sim_ms"] = r.gather_us * 1e-3;
    state.counters["block_gld_txn"] = static_cast<double>(r.block_transactions);
    state.counters["cyclic_gld_txn"] = static_cast<double>(r.cyclic_transactions);
  }
}

}  // namespace

BENCHMARK(Fig09_CoMem)->RangeMultiplier(2)->Range(1 << 20, 1 << 23)->Iterations(1);

CUMB_BENCH_MAIN("Fig. 9 - CoMem (coalesced vs uncoalesced AXPY)",
                "cyclic ~18x faster than block distribution, <<<1024,256>>>")
