// Extension: histogram privatization — global atomics vs shared-memory
// private histograms, swept over input skew. The more the samples
// concentrate in one bin, the harder the global-atomic kernel serializes
// and the bigger the privatization win.

#include "bench_common.hpp"
#include "core/histogram.hpp"

namespace {

void Ext_Histogram(benchmark::State& state) {
  double skew = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_histogram(rt, 1 << 20, 256, skew);
    cumbench::export_pair(state, r);
    state.counters["skew_pct"] = skew * 100;
    state.counters["global_serial"] = static_cast<double>(r.global_serializations);
    state.counters["shared_serial"] = static_cast<double>(r.shared_serializations);
  }
}

}  // namespace

BENCHMARK(Ext_Histogram)->Arg(0)->Arg(25)->Arg(50)->Arg(90)->Arg(100)->Iterations(1);

CUMB_BENCH_MAIN("Extension - histogram privatization (shared-memory atomics)",
                "privatization win grows with bin contention (input skew)")
