// Extension: memory-system microprobes (the abstract's "evaluating the
// memory systems of GPU itself"). The latency ladder shows each level of
// the simulated hierarchy as a plateau; the bandwidth probe reports achieved
// vs. peak GB/s for a streaming copy on every device profile.

#include "bench_common.hpp"
#include "core/memprobe.hpp"

namespace {

void Ext_LatencyLadder(benchmark::State& state) {
  std::size_t footprint = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto pts = cumb::run_latency_ladder(rt, {footprint}, 2048);
    state.counters["footprint_KiB"] = static_cast<double>(footprint) / 1024;
    state.counters["cycles_per_hop"] = pts[0].cycles_per_hop;
  }
}

void Ext_Bandwidth(benchmark::State& state) {
  vgpu::DeviceProfile p;
  switch (state.range(0)) {
    case 0: p = cumbench::DeviceProfile::k80(); break;
    case 1: p = cumbench::DeviceProfile::v100(); break;
    default: p = cumbench::DeviceProfile::a100(); break;
  }
  for (auto _ : state) {
    cumbench::Runtime rt(p);
    auto r = cumb::run_bandwidth(rt, 1 << 22);
    state.counters["achieved_GBps"] = r.achieved_gbps;
    state.counters["peak_GBps"] = r.peak_gbps;
    state.counters["efficiency_pct"] = r.efficiency() * 100;
  }
}

}  // namespace

// 8 KiB (fits L1 share) .. 16 MiB (beyond L2): the plateaus are the levels.
BENCHMARK(Ext_LatencyLadder)
    ->Arg(8 << 10)->Arg(64 << 10)->Arg(512 << 10)->Arg(4 << 20)->Arg(16 << 20)
    ->Iterations(1);
BENCHMARK(Ext_Bandwidth)->Arg(0)->Arg(1)->Arg(2)->Iterations(1);

CUMB_BENCH_MAIN("Extension - memory-system microprobes (latency ladder + bandwidth)",
                "pointer-chase latency steps through L1/L2/DRAM; streaming copy near peak")
