// Ablation: sensitivity of headline results to the two calibrated timing-
// model constants (DESIGN.md section 4): the latency-hiding depth and the
// roofline interference factor. The paper's qualitative conclusions should
// hold across the sweep — this bench demonstrates that they do.

#include "bench_common.hpp"
#include "core/comem.hpp"
#include "core/shuffle_reduce.hpp"

namespace {

void Ablate_LatencyHiding(benchmark::State& state) {
  int hiding = static_cast<int>(state.range(0));
  auto p = cumbench::DeviceProfile::v100();
  p.latency_hiding = hiding;
  for (auto _ : state) {
    cumbench::Runtime rt(p);
    auto r = cumb::run_comem(rt, 1 << 21, 1024);
    cumbench::export_pair(state, r);
    state.counters["latency_hiding"] = hiding;
  }
}

void Ablate_Interference(benchmark::State& state) {
  double interference = static_cast<double>(state.range(0)) / 100.0;
  auto p = cumbench::DeviceProfile::v100();
  p.roofline_interference = interference;
  for (auto _ : state) {
    cumbench::Runtime rt(p);
    auto r = cumb::run_shuffle_reduce(rt, 1 << 20);
    cumbench::export_pair(state, r);
    state.counters["interference_pct"] = interference * 100;
  }
}

}  // namespace

BENCHMARK(Ablate_LatencyHiding)->Arg(1)->Arg(4)->Arg(12)->Arg(32)->Iterations(1);
BENCHMARK(Ablate_Interference)->Arg(0)->Arg(20)->Arg(35)->Arg(70)->Iterations(1);

CUMB_BENCH_MAIN("Ablation - timing-model constants",
                "CoMem/Shuffle conclusions robust to latency-hiding and interference")
