// Ablation: unified-memory page granularity. The stride at which unified
// memory starts to win (Fig. 16) is set by the page size: larger pages move
// more useless data per fault and push the crossover to larger strides.

#include "bench_common.hpp"
#include "core/unimem.hpp"

namespace {

void Ablate_UmPageSize(benchmark::State& state) {
  std::size_t page = static_cast<std::size_t>(state.range(0));
  int stride = static_cast<int>(state.range(1));
  auto p = cumbench::DeviceProfile::v100();
  p.um_page_bytes = page;
  for (auto _ : state) {
    cumbench::Runtime rt(p);
    auto r = cumb::run_unimem(rt, 1 << 22, stride);
    cumbench::export_pair(state, r);
    state.counters["page_KiB"] = static_cast<double>(page) / 1024;
    state.counters["stride"] = stride;
    state.counters["migrated_MB"] = static_cast<double>(r.migrated_bytes) / (1 << 20);
  }
}

}  // namespace

BENCHMARK(Ablate_UmPageSize)
    ->ArgsProduct({{4096, 16384, 65536}, {256, 4096, 16384}})
    ->Iterations(1);

CUMB_BENCH_MAIN("Ablation - unified-memory page size",
                "larger pages push the UM-wins crossover to larger strides")
