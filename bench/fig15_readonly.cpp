// Fig. 15: matrix addition through 1-D/2-D textures vs global memory.
// Paper: up to ~4x on K80 (dedicated texture unit); no significant
// difference on V100 (texture cache unified with L1). Constant-memory
// broadcast measured separately with the polynomial kernel.

#include "bench_common.hpp"
#include "core/readonly.hpp"

namespace {

void run_profile(benchmark::State& state, const vgpu::DeviceProfile& p) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(p);
    auto r = cumb::run_readonly(rt, n);
    cumbench::export_pair(state, r);
    state.counters["global_sim_ms"] = r.global_us * 1e-3;
    state.counters["tex1d_sim_ms"] = r.tex1d_us * 1e-3;
    state.counters["tex2d_sim_ms"] = r.tex2d_us * 1e-3;
  }
}

void ReadOnly_K80(benchmark::State& state) {
  run_profile(state, cumbench::DeviceProfile::k80());
}
void ReadOnly_V100(benchmark::State& state) {
  run_profile(state, cumbench::DeviceProfile::v100());
}
void ReadOnly_ConstPoly(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_const_poly(rt, n);
    cumbench::export_pair(state, r);
  }
}

}  // namespace

BENCHMARK(ReadOnly_K80)->RangeMultiplier(2)->Range(256, 1024)->Iterations(1);
BENCHMARK(ReadOnly_V100)->RangeMultiplier(2)->Range(256, 1024)->Iterations(1);
BENCHMARK(ReadOnly_ConstPoly)->RangeMultiplier(4)->Range(1 << 16, 1 << 20)->Iterations(1);

CUMB_BENCH_MAIN("Fig. 15 - ReadOnlyMem (texture/constant memory)",
                "texture up to ~4x on K80; no significant difference on V100")
