// Fig. 16: access density (stride) sweep — explicit full copies vs unified
// memory on-demand paging, plus the prefetch/advise extension (the paper's
// stated future work). Paper: UM ~3x when density is low; explicit wins when
// density is high.

#include "bench_common.hpp"
#include "core/unimem.hpp"

namespace {

void Fig16_UniMem(benchmark::State& state) {
  int stride = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_unimem(rt, 1 << 22, stride);
    cumbench::export_pair(state, r);
    state.counters["stride"] = stride;
    state.counters["explicit_MB"] = static_cast<double>(r.explicit_bytes) / (1 << 20);
    state.counters["migrated_MB"] = static_cast<double>(r.migrated_bytes) / (1 << 20);
    state.counters["page_faults"] = static_cast<double>(r.page_faults);
    state.counters["prefetch_sim_ms"] = r.prefetch_us * 1e-3;
  }
}

}  // namespace

BENCHMARK(Fig16_UniMem)->RangeMultiplier(4)->Range(1, 1 << 14)->Iterations(1);

CUMB_BENCH_MAIN("Fig. 16 - UniMem (memory access density / unified memory)",
                "UM ~3x faster at low density (large stride); slower at stride 1")
