// vgpu-serve chaos harness: drive whole job queues through injected faults,
// worker-count sweeps, and a kill -> restart -> replay-from-disk cycle of the
// persistent cache, and assert the fault-tolerance contract end to end:
//
//   A. Single-device fault matrix - a bench queue under every injectable
//      fault site, at 1/4/8 workers. Every job must eventually complete with
//      bytes identical to the never-faulted run, and the report body must be
//      byte-identical at any worker count.
//   B. Multi-GPU eviction - device-scoped faults over the multi:* ports at
//      two devices. The tripping ordinal is evicted, the job replays
//      degraded-but-verified, and reports stay worker-count-invariant.
//   C. Crash/replay - a server persists its queue to --dir, "crashes" (is
//      destroyed), and a restarted server must serve every job from disk
//      byte-identically without re-simulating. Two entries are then
//      deliberately corrupted (truncation, bit flip); the next restart must
//      quarantine both and recompute, never serving corrupt bytes.
//
// Plain executable: prints one line per scenario, exits 0 only if every
// assertion held (the CI chaos job keys off the exit code). Deterministic:
// no wall clock, no randomness.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace {

namespace fs = std::filesystem;
using vgpu::RuntimeOptions;
using vgpu::serve::JobServer;
using vgpu::serve::JobSpec;
using vgpu::serve::KernelRegistry;

int g_failures = 0;

#define CHECK(cond, ...)                                        \
  do {                                                          \
    if (!(cond)) {                                              \
      std::fprintf(stderr, "serve_chaos FAIL (line %d): ", __LINE__); \
      std::fprintf(stderr, __VA_ARGS__);                        \
      std::fprintf(stderr, "\n");                               \
      ++g_failures;                                             \
    }                                                           \
  } while (0)

const int kWorkerCounts[] = {1, 4, 8};

std::string report_tail(const std::string& report) {
  std::size_t at = report.find("\"jobs\"");
  return at == std::string::npos ? report : report.substr(at);
}

// --- Scenario A: single-device fault matrix ---------------------------------

const char* kBenchKernels[] = {"bench:warpdiv", "bench:layout",
                               "bench:readonly", "bench:bankredux"};
const char* kBenchFaults[] = {
    "",                        // Clean reference run.
    "oom:nth=1",               // Allocation failure.
    "h2d:nth=1",               // Upload dropped.
    "d2h:nth=1",               // Download dropped.
    "launch:transient,nth=2",  // Launch rejected, context stays healthy.
    "launch:nth=2",            // Sticky corruption: device reset + replay.
};

struct QueueResult {
  std::vector<std::string> blobs;  // One per job, submission order.
  std::string tail;                // Report body below the config echo.
  bool all_ok = true;
};

QueueResult run_bench_queue(const KernelRegistry& reg, const char* fault,
                            int workers) {
  JobServer server(reg, {workers, 64, true});
  for (const char* kernel : kBenchKernels) {
    JobSpec spec{"chaos", kernel, 0, RuntimeOptions::defaults()};
    spec.options.fault_spec = fault;
    server.submit(spec);
  }
  server.run();
  QueueResult out;
  for (const auto& rec : server.records()) {
    out.all_ok = out.all_ok && rec.ok;
    if (!rec.ok)
      std::fprintf(stderr, "serve_chaos: %s under '%s' failed: %s\n",
                   rec.spec.kernel.c_str(), fault, rec.error.c_str());
    out.blobs.push_back(rec.blob);
  }
  out.tail = report_tail(server.report_json());
  return out;
}

void scenario_fault_matrix(const KernelRegistry& reg) {
  QueueResult clean = run_bench_queue(reg, "", 1);
  CHECK(clean.all_ok, "clean reference queue failed");
  for (const char* fault : kBenchFaults) {
    QueueResult ref;
    for (std::size_t w = 0; w < 3; ++w) {
      QueueResult got = run_bench_queue(reg, fault, kWorkerCounts[w]);
      CHECK(got.all_ok, "queue under '%s' at %d workers did not recover",
            fault, kWorkerCounts[w]);
      // Recovered jobs must reproduce the never-faulted bytes exactly.
      for (std::size_t i = 0; i < got.blobs.size(); ++i)
        CHECK(got.blobs[i] == clean.blobs[i],
              "'%s' blob for %s differs from the clean run", fault,
              kBenchKernels[i]);
      if (w == 0)
        ref = got;
      else
        CHECK(got.tail == ref.tail,
              "report under '%s' differs between 1 and %d workers", fault,
              kWorkerCounts[w]);
    }
  }
  std::printf("serve_chaos: fault matrix ok (%zu faults x %zu kernels x 3 "
              "worker counts)\n",
              std::size(kBenchFaults), std::size(kBenchKernels));
}

// --- Scenario B: multi-GPU device eviction ----------------------------------

const char* kMultiKernels[] = {"multi:halo", "multi:histogram",
                               "multi:matmul"};
const char* kMultiFaults[] = {"launch@dev1:fail", "p2p@dev1:fail"};

void scenario_eviction(const KernelRegistry& reg) {
  for (const char* fault : kMultiFaults) {
    std::string ref_tail;
    for (std::size_t w = 0; w < 3; ++w) {
      JobServer server(reg, {kWorkerCounts[w], 64, true});
      for (const char* kernel : kMultiKernels) {
        JobSpec spec{"chaos", kernel, 0, RuntimeOptions::defaults()};
        spec.options.devices = 2;
        spec.options.fault_spec = fault;
        server.submit(spec);
      }
      server.run();
      for (const auto& rec : server.records()) {
        CHECK(rec.ok, "%s under '%s' at %d workers did not recover: %s",
              rec.spec.kernel.c_str(), fault, kWorkerCounts[w],
              rec.error.c_str());
        if (!rec.ok) continue;
        // A job that tripped must have shed the faulty ordinal and still
        // verified on the survivors; a job whose kernel never touches the
        // fault site completes healthy in one attempt - both are fine, but
        // a degraded job must say so.
        if (!rec.attempt_log.empty()) {
          CHECK(rec.degraded, "%s recovered via retries but not degraded?",
                rec.spec.kernel.c_str());
          CHECK(rec.blob.find("\"verified\": true") != std::string::npos,
                "%s degraded blob did not verify", rec.spec.kernel.c_str());
        }
      }
      std::string tail = report_tail(server.report_json());
      if (w == 0)
        ref_tail = tail;
      else
        CHECK(tail == ref_tail,
              "eviction report under '%s' differs between 1 and %d workers",
              fault, kWorkerCounts[w]);
    }
  }
  std::printf("serve_chaos: device eviction ok (%zu faults x %zu multi "
              "kernels x 3 worker counts)\n",
              std::size(kMultiFaults), std::size(kMultiKernels));
}

// --- Scenario C: kill -> restart -> replay from the persistent cache --------

void submit_persist_queue(JobServer* server) {
  for (const char* kernel : kBenchKernels)
    server->submit({"chaos", kernel, 0, RuntimeOptions::defaults()});
}

void scenario_crash_replay(const KernelRegistry& reg, const fs::path& dir) {
  fs::remove_all(dir);
  auto config = [&] {
    JobServer::Config cfg{2, 64, true};
    cfg.cache_dir = dir.string();
    return cfg;
  };

  // Life 1: simulate everything, spill to disk, then "crash".
  std::vector<std::string> blobs, keys;
  {
    JobServer a(reg, config());
    submit_persist_queue(&a);
    a.run();
    for (const auto& rec : a.records()) {
      CHECK(rec.ok, "persist run failed: %s", rec.error.c_str());
      blobs.push_back(rec.blob);
      keys.push_back(rec.key);
    }
    CHECK(a.cache().store()->stores() == blobs.size(),
          "expected %zu spills, saw %llu", blobs.size(),
          static_cast<unsigned long long>(a.cache().store()->stores()));
  }

  // Life 2: a restarted server replays every job from disk, byte-identical,
  // without a single re-simulation.
  {
    JobServer b(reg, config());
    submit_persist_queue(&b);
    b.run();
    for (std::size_t i = 0; i < b.records().size(); ++i) {
      CHECK(b.records()[i].cached, "job %zu re-simulated after restart", i);
      CHECK(b.records()[i].blob == blobs[i],
            "job %zu replayed different bytes after restart", i);
    }
    CHECK(b.cache().store()->loads() == blobs.size(), "expected disk loads");
    CHECK(b.cache().store()->stores() == 0u, "restart should not re-spill");
  }

  // Life 3: two entries rot on disk - a truncation (crash mid-write of some
  // other process) and a bit flip. Both must be quarantined and recomputed;
  // the recomputed bytes must still match.
  {
    JobServer c(reg, config());
    fs::resize_file(c.cache().store()->path_for(keys[0]), 5);
    {
      const std::string path = c.cache().store()->path_for(keys[1]);
      std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
      f.seekg(-1, std::ios::end);
      char c = 0;
      f.get(c);
      f.seekp(-1, std::ios::end);
      f.put(static_cast<char>(c ^ 0x20));
    }
    submit_persist_queue(&c);
    c.run();
    for (std::size_t i = 0; i < c.records().size(); ++i) {
      CHECK(c.records()[i].ok, "job %zu failed after corruption", i);
      CHECK(c.records()[i].blob == blobs[i],
            "job %zu served wrong bytes after corruption", i);
      bool corrupted = i < 2;
      CHECK(c.records()[i].cached == !corrupted,
            "job %zu cached=%d after corruption", i, (int)c.records()[i].cached);
    }
    CHECK(c.cache().store()->quarantined() == 2u,
          "expected 2 quarantined entries, saw %llu",
          static_cast<unsigned long long>(c.cache().store()->quarantined()));
    CHECK(fs::exists(c.cache().store()->path_for(keys[0]) +
                     std::string(".quarantined")),
          "truncated entry was not quarantined aside");
  }
  std::printf("serve_chaos: crash/replay cycle ok (%zu jobs, 2 corruptions "
              "quarantined)\n",
              blobs.size());
}

}  // namespace

int main(int argc, char** argv) {
  fs::path dir = fs::temp_directory_path() / "vgpu_serve_chaos_cache";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: serve_chaos [--dir=CACHE_DIR]\n");
      return 2;
    }
  }

  KernelRegistry reg = KernelRegistry::builtin();
  scenario_fault_matrix(reg);
  scenario_eviction(reg);
  scenario_crash_replay(reg, dir);

  if (g_failures != 0) {
    std::fprintf(stderr, "serve_chaos: %d failures\n", g_failures);
    return 1;
  }
  std::printf("serve_chaos: all scenarios passed\n");
  return 0;
}
