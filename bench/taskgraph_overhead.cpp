// Section III-D: task graphs. The paper evaluates programmability only; this
// quantifies the launch-overhead mechanism: per-op stream submission vs one
// instantiated-graph launch, as a function of chain length.

#include "bench_common.hpp"
#include "core/taskgraph.hpp"

namespace {

void TaskGraph_Overhead(benchmark::State& state) {
  int chain = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_taskgraph(rt, /*n=*/4096, chain, /*repeats=*/8);
    cumbench::export_pair(state, r);
    state.counters["stream_per_iter_us"] = r.stream_per_iter_us;
    state.counters["graph_per_iter_us"] = r.graph_per_iter_us;
  }
}

}  // namespace

BENCHMARK(TaskGraph_Overhead)->RangeMultiplier(2)->Range(4, 64)->Iterations(1);

CUMB_BENCH_MAIN("Sec. III-D - TaskGraph (repeated submission overhead)",
                "paper reports programmability only; related work sees up to 25x")
