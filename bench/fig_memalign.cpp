// Section IV-C / Fig. 10: aligned vs misaligned AXPY on both device
// profiles. Paper: ~3% on V100 (L1 absorbs the extra transaction); larger on
// parts without an L1 for global loads.

#include "bench_common.hpp"
#include "core/memalign.hpp"

namespace {

void run_profile(benchmark::State& state, const vgpu::DeviceProfile& p) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(p);
    auto r = cumb::run_memalign(rt, n);
    cumbench::export_pair(state, r);
    state.counters["aligned_txn"] = static_cast<double>(r.aligned_transactions);
    state.counters["misaligned_txn"] =
        static_cast<double>(r.misaligned_transactions);
  }
}

void MemAlign_V100(benchmark::State& state) {
  run_profile(state, cumbench::DeviceProfile::v100());
}
void MemAlign_K80(benchmark::State& state) {
  run_profile(state, cumbench::DeviceProfile::k80());
}

}  // namespace

BENCHMARK(MemAlign_V100)->RangeMultiplier(4)->Range(1 << 18, 1 << 22)->Iterations(1);
BENCHMARK(MemAlign_K80)->RangeMultiplier(4)->Range(1 << 18, 1 << 22)->Iterations(1);

CUMB_BENCH_MAIN("Sec. IV-C / Fig. 10 - MemAlign (aligned vs misaligned access)",
                "~3% penalty on V100; larger on GPUs without L1 for global loads")
