// Multi-GPU port: pipelined matmul (vgpu-multi scale-out pair).
//
// C = A·B with A and C row-sharded and B split into k-blocks cycled around
// the devices: each of the N rounds multiplies one B block fetched from its
// owner. The naive variant stops the pipeline every round for a host-staged
// fetch; the optimized one prefetches the next block peer-to-peer on a
// second stream while the current round computes, hiding the transfer under
// the kernel. Both verify bitwise against a host reference that replays the
// device's accumulation order.

#include "bench_common.hpp"
#include "multi/ports.hpp"

namespace {

constexpr int kStrongDim = 256;   // m = n = k for the fixed-size curve.
constexpr int kWeakDim = 160;     // Per-device share of the weak curve.

void export_multi(benchmark::State& state, const cumb::MultiPairResult& r) {
  state.counters["devices"] = r.devices;
  state.counters["naive_sim_ms"] = r.naive_us * 1e-3;
  state.counters["optimized_sim_ms"] = r.optimized_us * 1e-3;
  state.counters["speedup"] = r.speedup();
  state.counters["verified"] = r.results_match() ? 1 : 0;
  state.counters["peer_transfers"] = r.optimized_transfers;
}

void Multi_PipelineMatmul_Strong(benchmark::State& state) {
  int devices = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = cumb::run_pipelined_matmul(vgpu::ambient_options(), devices,
                                        kStrongDim, kStrongDim, kStrongDim);
    export_multi(state, r);
  }
}

void Multi_PipelineMatmul_Weak(benchmark::State& state) {
  int devices = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = cumb::run_pipelined_matmul(vgpu::ambient_options(), devices,
                                        kWeakDim * devices, kWeakDim,
                                        kWeakDim * devices);
    export_multi(state, r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  cumbench::consume_prof_flags(&argc, argv);
  cumbench::banner(
      "Multi-GPU - pipelined matmul (staged fetch vs P2P prefetch overlap)",
      "P2P prefetch on a second stream hides the block transfer under compute");
  std::vector<int> counts = cumbench::device_count() != 1
                                ? std::vector<int>{cumbench::device_count()}
                                : std::vector<int>{1, 2, 4};
  for (int d : counts) {
    benchmark::RegisterBenchmark("Multi_PipelineMatmul_Strong",
                                 Multi_PipelineMatmul_Strong)
        ->Arg(d)
        ->Iterations(1);
    benchmark::RegisterBenchmark("Multi_PipelineMatmul_Weak",
                                 Multi_PipelineMatmul_Weak)
        ->Arg(d)
        ->Iterations(1);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
