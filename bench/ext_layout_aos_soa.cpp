// Extension (paper future work): the dense instance of the MiniTransfer
// pattern — AoS vs SoA particle layout. SoA ships 4x fewer bytes here and
// its kernel coalesces, so the win combines both effects.

#include "bench_common.hpp"
#include "core/layout.hpp"

namespace {

void Ext_LayoutAosSoa(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_layout(rt, n);
    cumbench::export_pair(state, r);
    state.counters["aos_MB"] = static_cast<double>(r.aos_bytes) / (1 << 20);
    state.counters["soa_MB"] = static_cast<double>(r.soa_bytes) / (1 << 20);
    state.counters["aos_gld_txn"] =
        static_cast<double>(r.naive_stats.gld_transactions);
    state.counters["soa_gld_txn"] =
        static_cast<double>(r.optimized_stats.gld_transactions);
  }
}

}  // namespace

BENCHMARK(Ext_LayoutAosSoa)->RangeMultiplier(4)->Range(1 << 16, 1 << 22)->Iterations(1);

CUMB_BENCH_MAIN("Extension - AoS vs SoA data layout (MiniTransfer pattern, dense case)",
                "paper lists layout benchmarks as future work; transfer ratio = fields used/total")
