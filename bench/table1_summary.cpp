// Table I: the summary table of all fourteen microbenchmarks, with the
// paper's claimed speedups next to the speedups measured on this simulator.
// Runs every benchmark once at a representative (scaled-down) size.
//
// --smoke shrinks every benchmark to a tiny size so the binary doubles as a
// ctest smoke run: functional verification still covers all fourteen pairs,
// but the speedup column is not meaningful at these sizes.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/bankredux.hpp"
#include "core/comem.hpp"
#include "core/conkernels.hpp"
#include "core/dynparallel.hpp"
#include "core/gsoverlap.hpp"
#include "core/hdoverlap.hpp"
#include "core/memalign.hpp"
#include "core/minitransfer.hpp"
#include "core/readonly.hpp"
#include "core/report.hpp"
#include "core/shmem_mm.hpp"
#include "core/shuffle_reduce.hpp"
#include "core/taskgraph.hpp"
#include "core/unimem.hpp"
#include "core/warpdiv.hpp"

using namespace cumb;
using vgpu::DeviceProfile;

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  std::vector<Table1Row> rows;
  bool all_verified = true;
  auto add = [&](const PairResult& r, std::string pattern, std::string technique,
                 std::string paper, int prog) {
    rows.push_back(Table1Row{r.name, std::move(pattern), std::move(technique),
                             std::move(paper), r.speedup(), prog});
    all_verified = all_verified && r.results_match;
  };

  {
    Runtime rt(DeviceProfile::v100());
    add(run_warpdiv(rt, smoke ? 1 << 12 : 1 << 18), "threads enter different branches",
        "take the warp size as the branch step", "1.1 (average)", 3);
  }
  {
    Runtime rt(DeviceProfile::rtx3080_scaled());
    add(run_dynparallel(rt, smoke ? 256 : 1024, smoke ? 256 : 1024), "nested parallelism (adaptive grids)",
        "dynamic parallelism (device-side launch)", "3.26 (best)", 4);
  }
  {
    Runtime rt(DeviceProfile::v100());
    add(run_conkernels(rt, smoke ? 4 : 8, smoke ? 2000 : 20000), "multiple kernel instances on one GPU",
        "concurrent kernels on streams", "7 (average)", 4);
  }
  {
    Runtime rt(DeviceProfile::v100());
    add(smoke ? run_taskgraph(rt, 1024, 4, 2) : run_taskgraph(rt), "repeated work submission",
        "pre-defined task graph, run repeatedly", "programmability", 3);
  }
  {
    Runtime rt(DeviceProfile::v100());
    add(run_shmem_mm(rt, smoke ? 64 : 256), "data accessed several times",
        "stage reused tiles in shared memory", "1.25 (average)", 2);
  }
  {
    Runtime rt(DeviceProfile::v100());
    add(run_comem(rt, smoke ? 1 << 15 : 1 << 22, smoke ? 16 : 1024), "strided/uncoalesced access across threads",
        "cyclic distribution (consecutive access)", "18 (average)", 3);
  }
  {
    Runtime rt(DeviceProfile::v100());
    add(run_memalign(rt, smoke ? 1 << 14 : 1 << 20), "unaligned first address",
        "aligned allocation/indexing", "1.1 (average)", 1);
  }
  {
    Runtime rt(DeviceProfile::rtx3080());
    add(run_gsoverlap(rt, smoke ? 1 << 14 : 1 << 20), "global->shared copy takes much time",
        "memcpy_async (CUDA 11)", "1.04 (best)", 3);
  }
  {
    Runtime rt(DeviceProfile::v100());
    add(run_shuffle_reduce(rt, smoke ? 1 << 14 : 1 << 20), "data exchange between threads",
        "warp shuffle between registers", "1.25 (average)", 5);
  }
  {
    Runtime rt(DeviceProfile::v100());
    add(run_bankredux(rt, smoke ? 1 << 14 : 1 << 20), "threads hit different words of one bank",
        "sequential indexing (no conflicts)", "1.3 (average)", 5);
  }
  {
    Runtime rt(DeviceProfile::v100());
    add(smoke ? run_hdoverlap(rt, 1 << 16, 2, 2) : run_hdoverlap(rt, 1 << 20), "host-device copy takes much time",
        "cudaMemcpyAsync + streams", "1.036 (best)", 1);
  }
  {
    Runtime rt(DeviceProfile::k80());
    add(run_readonly(rt, smoke ? 128 : 512), "large amount of read-only data",
        "constant/texture memory", "4.3 (best)", 1);
  }
  {
    Runtime rt(DeviceProfile::v100());
    add(run_unimem(rt, smoke ? 1 << 16 : 1 << 22, smoke ? 256 : 4096), "low memory access density",
        "unified memory, copy only needed pages", "3 (average)", 3);
  }
  {
    Runtime rt(DeviceProfile::v100());
    add(run_minitransfer(rt, smoke ? 256 : 2048, smoke ? 1024 : 2048LL * 16), "useless data transferred",
        "CSR layout, transfer only non-zeros", "190 (best)", 5);
  }

  std::printf("# Table I - CUDAMicroBench summary (paper speedup vs measured on "
              "the vgpu simulator)\n\n%s\nfunctional verification: %s\n",
              format_table1(rows).c_str(), all_verified ? "ALL PASSED" : "FAILURES");
  return all_verified ? 0 : 1;
}
