// Graceful-degradation harness for the vgpu-fault error model.
//
// Real CUDA applications survive device trouble with two standard moves, and
// this binary exercises both against deterministic injected faults:
//
//   1. Retry with backoff — a transient launch rejection
//      (cudaErrorLaunchOutOfResources) retries the same launch after a
//      simulated backoff; a sticky failure surfaced at the sync point
//      (cudaErrorLaunchFailure) recovers via device_reset() and re-runs the
//      pass.
//   2. OOM fallback — when the requested batch doesn't fit device memory,
//      halve it until allocation succeeds, then process the workload in that
//      many smaller passes. Failed probe allocations consume nothing.
//
// Every scenario runs TWICE with fresh Runtimes under the same fault spec
// and asserts the two event logs are byte-identical — injected faults, and
// therefore the recovery paths they trigger, are reproducible inputs, not
// flakes. Results are verified after every recovery.
//
// The fault spec comes from --fault=SPEC, else VGPU_FAULT, else a default
// transient-launch storm. Exit status is 0 only if every scenario recovered,
// verified, and replayed identically; the report on stdout is the CI
// artifact.
//
//   ./fault_degradation                                # default spec
//   ./fault_degradation --fault=launch:nth=2           # sticky flavor
//   VGPU_FAULT=oom:after=3 ./fault_degradation

#include <cstdio>
#include <cstring>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <vgpu.hpp>

namespace {

using vgpu::DeviceProfile;
using vgpu::DevSpan;
using vgpu::Dim3;
using vgpu::ErrorCode;
using vgpu::LaunchInfo;
using vgpu::Runtime;
using vgpu::WarpCtx;
using vgpu::WarpTask;

constexpr const char* kDefaultSpec = "launch:transient,p=0.25,seed=7";
constexpr int kMaxRetries = 16;

struct ScenarioLog {
  std::ostringstream events;  ///< One line per decision, for replay compare.
  int retries = 0;
  int resets = 0;
  bool verified = false;
};

// --- Scenario 1: retry with backoff ------------------------------------------

// Each pass scales x by 2 in place; `passes` passes multiply by 2^passes.
ScenarioLog run_retry_scenario(const std::string& spec, int passes) {
  ScenarioLog log;
  Runtime rt(DeviceProfile::test_tiny());
  rt.set_fault_spec(spec);
  constexpr int kN = 1 << 12;
  std::vector<int> host(kN, 1);
  DevSpan<int> d = rt.malloc<int>(kN);
  rt.memcpy_h2d(d, std::span<const int>(host));

  auto scale2 = [=](WarpCtx& w) -> WarpTask {
    vgpu::LaneI i = w.global_tid_x();
    w.branch(i < kN, [&] { w.store(d, i, w.load(d, i) * 2); });
    co_return;
  };
  vgpu::LaunchConfig cfg{Dim3{kN / 256}, Dim3{256}, "scale2"};

  for (int pass = 0; pass < passes; ++pass) {
    bool done = false;
    for (int attempt = 0; attempt < kMaxRetries && !done; ++attempt) {
      LaunchInfo r = rt.launch(cfg, scale2);
      if (r.error == ErrorCode::kLaunchOutOfResources) {
        // Transient rejection: back off (simulated time) and retry.
        log.events << "pass " << pass << " attempt " << attempt
                   << " transient-reject\n";
        ++log.retries;
        rt.timeline().host_advance(10.0 * (attempt + 1));
        (void)rt.get_last_error();  // Acknowledge, like checkCuda would.
        continue;
      }
      ErrorCode sync = rt.synchronize();
      if (sync != ErrorCode::kSuccess) {
        // Sticky corruption surfaced at the sync point: only a device reset
        // recovers. The kernel never ran, so re-running the pass is sound.
        log.events << "pass " << pass << " attempt " << attempt << " sync "
                   << vgpu::error_name(sync) << " -> reset\n";
        ++log.resets;
        rt.device_reset();
        continue;
      }
      log.events << "pass " << pass << " ok after " << attempt << " retries\n";
      done = true;
    }
    if (!done) {
      log.events << "pass " << pass << " FAILED after " << kMaxRetries
                 << " attempts\n";
      return log;
    }
  }

  std::vector<int> back(kN);
  rt.memcpy_d2h(std::span<int>(back), d);
  int expect = 1 << passes;
  log.verified = true;
  for (int v : back) log.verified = log.verified && v == expect;
  log.events << "verified " << (log.verified ? 1 : 0) << "\n";
  return log;
}

// --- Scenario 2: OOM fallback to a smaller batch -----------------------------

// Sum `total` elements on a device too small for the whole batch: halve the
// batch until cudaMalloc succeeds, then reuse one buffer across chunks (the
// bump allocator never recycles, so probing must stop at the first success).
ScenarioLog run_oom_fallback_scenario(const std::string& spec) {
  ScenarioLog log;
  DeviceProfile p = DeviceProfile::test_tiny();
  p.gmem_bytes = 1 << 20;  // 1 MiB device: the full 1 MiB batch plus the
                           // accumulator can't fit; half of it can.
  Runtime rt(p);
  rt.set_fault_spec(spec);

  constexpr std::size_t kTotal = 1 << 18;  // 1 MiB of int.
  std::vector<int> host(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i)
    host[i] = static_cast<int>(i % 100);  // Small values: no int overflow.

  DevSpan<int> sums = rt.malloc<int>(1);  // Single atomic accumulator.
  std::size_t batch = kTotal;
  DevSpan<int> buf{};
  while (batch >= 1024) {
    buf = rt.malloc<int>(batch);
    if (buf.addr != 0) break;
    log.events << "batch " << batch << " -> "
               << vgpu::error_name(rt.get_last_error()) << ", halving\n";
    ++log.retries;
    batch /= 2;
    buf = DevSpan<int>{};
  }
  if (buf.addr == 0 || sums.addr == 0) {
    log.events << "no batch fits\n";
    return log;
  }
  log.events << "final batch " << batch << "\n";

  long long total = 0;
  for (std::size_t off = 0; off < kTotal; off += batch) {
    std::size_t n = std::min(batch, kTotal - off);
    rt.memcpy_h2d(buf, std::span<const int>(host.data() + off, n));
    rt.memset(sums, 0);
    DevSpan<int> chunk{buf.addr, n};
    auto reduce = [=](WarpCtx& w) -> WarpTask {
      vgpu::LaneI i = w.global_tid_x();
      w.branch(i < static_cast<int>(n), [&] {
        w.atomic_add(sums, vgpu::LaneI(0), w.load(chunk, i));
      });
      co_return;
    };
    // The fault spec applies here too: survive transient launch rejections
    // and sticky surfaced failures with the same retry/reset discipline.
    std::size_t blocks = (n + 255) / 256;
    bool done = false;
    for (int attempt = 0; attempt < kMaxRetries && !done; ++attempt) {
      rt.memset(sums, 0);
      LaunchInfo r = rt.launch(
          {Dim3{static_cast<int>(blocks)}, Dim3{256}, "reduce"}, reduce);
      if (r.error == ErrorCode::kLaunchOutOfResources) {
        log.events << "chunk " << off << " transient-reject\n";
        ++log.retries;
        rt.timeline().host_advance(10.0 * (attempt + 1));
        (void)rt.get_last_error();
        continue;
      }
      ErrorCode sync = rt.synchronize();
      if (sync != ErrorCode::kSuccess) {
        log.events << "chunk " << off << " sync " << vgpu::error_name(sync)
                   << " -> reset\n";
        ++log.resets;
        rt.device_reset();
        continue;
      }
      done = true;
    }
    if (!done) {
      log.events << "chunk at " << off << " failed\n";
      return log;
    }
    int chunk_sum = 0;
    rt.memcpy_d2h(std::span<int>(&chunk_sum, 1), sums);
    total += chunk_sum;
  }

  long long expect = std::accumulate(host.begin(), host.end(), 0ll);
  log.verified = total == expect;
  log.events << "sum " << total << " expect " << expect << "\n"
             << "verified " << (log.verified ? 1 : 0) << "\n";
  return log;
}

// --- Driver ------------------------------------------------------------------

/// Run a scenario twice and insist on recovery, verification, and an
/// identical replay. Returns true on success.
template <typename Fn>
bool check_twice(const char* name, Fn scenario) {
  ScenarioLog a = scenario();
  ScenarioLog b = scenario();
  bool replay_identical = a.events.str() == b.events.str();
  std::printf("## %s\n%s", name, a.events.str().c_str());
  std::printf("retries=%d resets=%d verified=%d replay_identical=%d\n\n",
              a.retries, a.resets, a.verified ? 1 : 0, replay_identical ? 1 : 0);
  if (!replay_identical)
    std::printf("REPLAY DIVERGED:\n--- first ---\n%s--- second ---\n%s",
                a.events.str().c_str(), b.events.str().c_str());
  return a.verified && replay_identical;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec = kDefaultSpec;
  if (std::string env = vgpu::RuntimeOptions::from_env().fault_spec; !env.empty())
    spec = std::move(env);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fault=", 8) == 0) spec = argv[i] + 8;
  }
  // This binary manages its own injectors; install an ambient override with
  // the fault spec cleared (other VGPU_* knobs preserved) so the Runtimes it
  // constructs don't re-read VGPU_FAULT and double-inject.
  vgpu::RuntimeOptions ambient = vgpu::RuntimeOptions::from_env();
  ambient.fault_spec.clear();
  vgpu::set_ambient_options(std::move(ambient));

  std::printf("# vgpu-fault graceful-degradation harness\n# fault spec: %s\n\n",
              spec.c_str());

  bool ok = true;
  ok &= check_twice("retry-with-backoff (injected launch faults)",
                    [&] { return run_retry_scenario(spec, 6); });
  ok &= check_twice("oom-fallback (capacity-limited device)",
                    [&] { return run_oom_fallback_scenario(spec); });

  std::printf("%s\n", ok ? "ALL SCENARIOS RECOVERED" : "DEGRADATION FAILURE");
  return ok ? 0 : 1;
}
