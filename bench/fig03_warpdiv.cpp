// Fig. 3: execution time of the WD (divergent) and noWD (convergent) kernels
// on the V100 profile, with nvprof-style warp execution efficiency.

#include "bench_common.hpp"
#include "core/warpdiv.hpp"

namespace {

void Fig03_WarpDiv(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_warpdiv(rt, n);
    cumbench::export_pair(state, r);
    state.counters["wd_warp_eff_pct"] = r.wd_efficiency_pct;
    state.counters["nowd_warp_eff_pct"] = r.nowd_efficiency_pct;
  }
}

}  // namespace

BENCHMARK(Fig03_WarpDiv)->RangeMultiplier(4)->Range(1 << 14, 1 << 22)->Iterations(1);

CUMB_BENCH_MAIN("Fig. 3 - WarpDivRedux (warp divergence)",
                "noWD ~1.1x faster on average; efficiency 85.71% vs 100%")
