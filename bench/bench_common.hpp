#pragma once

// Shared scaffolding for the per-figure benchmark binaries.
//
// Each binary regenerates one table or figure from the paper's evaluation.
// All reported numbers are *simulated* times (the vgpu timing model), not
// wall-clock: the google-benchmark iteration wraps one deterministic
// simulation and exports the simulated milliseconds and speedup as counters,
// so one iteration per configuration is exact. A header printed from main()
// states which figure the series reproduces and what the paper measured.

// Every bench binary also understands two vgpu-prof flags (consumed before
// google-benchmark sees the argv):
//
//   --prof[=summary,metrics,trace]   enable profiling for every Runtime the
//                                    bench constructs (default: summary,metrics)
//   --trace-out=FILE.json            write chrome://tracing JSON; implies
//                                    --prof=trace. Successive configurations
//                                    number their files FILE.json, FILE.1.json, ...
//
// Both just seed the VGPU_PROF / VGPU_TRACE_OUT environment variables, which
// each Runtime reads at construction.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <vgpu.hpp>

#include "core/common.hpp"
#include "core/report.hpp"

namespace cumbench {

using cumb::PairResult;
using cumb::Runtime;
using vgpu::DeviceProfile;

/// Export the standard counters of a naive/optimized pair.
inline void export_pair(benchmark::State& state, const PairResult& r) {
  state.counters["naive_sim_ms"] = r.naive_us * 1e-3;
  state.counters["optimized_sim_ms"] = r.optimized_us * 1e-3;
  state.counters["speedup"] = r.speedup();
  state.counters["verified"] = r.results_match ? 1 : 0;
}

/// Print the standard banner; call at the top of each bench main().
inline void banner(const char* figure, const char* paper_result) {
  std::printf("# %s\n# Paper result: %s\n# Columns are simulated times from the "
              "vgpu model (see DESIGN.md).\n",
              figure, paper_result);
}

/// Strip --prof / --trace-out from argv (google-benchmark rejects unknown
/// flags) and translate them into the VGPU_PROF / VGPU_TRACE_OUT env vars.
/// Validates the mode eagerly so a typo fails the run instead of silently
/// profiling nothing.
inline void consume_prof_flags(int* argc, char** argv) {
  int keep = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--prof") == 0) {
      setenv("VGPU_PROF", "summary,metrics", 1);
    } else if (std::strncmp(a, "--prof=", 7) == 0) {
      vgpu::parse_prof_mode(a + 7);  // Throws on a bad token.
      setenv("VGPU_PROF", a + 7, 1);
    } else if (std::strncmp(a, "--trace-out=", 12) == 0) {
      setenv("VGPU_TRACE_OUT", a + 12, 1);
      const char* mode = std::getenv("VGPU_PROF");
      if (mode == nullptr || *mode == '\0') setenv("VGPU_PROF", "trace", 1);
    } else {
      argv[keep++] = argv[i];
    }
  }
  *argc = keep;
}

}  // namespace cumbench

/// Boilerplate main that prints a banner before running the benchmarks.
#define CUMB_BENCH_MAIN(figure, paper_result)                       \
  int main(int argc, char** argv) {                                 \
    cumbench::banner(figure, paper_result);                         \
    cumbench::consume_prof_flags(&argc, argv);                      \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }
