#pragma once

// Shared scaffolding for the per-figure benchmark binaries.
//
// Each binary regenerates one table or figure from the paper's evaluation.
// All reported numbers are *simulated* times (the vgpu timing model), not
// wall-clock: the google-benchmark iteration wraps one deterministic
// simulation and exports the simulated milliseconds and speedup as counters,
// so one iteration per configuration is exact. A header printed from main()
// states which figure the series reproduces and what the paper measured.

// Every bench binary also understands the vgpu runtime flags (consumed
// before google-benchmark sees the argv):
//
//   --threads=N                      simulation worker threads per Runtime
//                                    (results are bit-identical at any N)
//   --fidelity=exact|fast            simulation fidelity
//   --check[=memcheck,racecheck,...] enable vgpu-san checkers (default: full)
//   --fault=SPEC                     vgpu-fault injection spec
//   --prof[=summary,metrics,trace]   enable profiling for every Runtime the
//                                    bench constructs (default: summary,metrics)
//   --trace-out=FILE.json            write chrome://tracing JSON; implies
//                                    --prof=trace. Successive configurations
//                                    number their files FILE.json, FILE.1.json, ...
//   --advise[=warn|full]             enable the performance advisor (default:
//                                    full); each Runtime prints its report at
//                                    destruction
//   --advise-out=FILE.json           write the JSON advice report; implies
//                                    --advise=full
//   --devices=N                      device count for the multi-GPU benches
//                                    (default 1; single-GPU benches accept and
//                                    ignore it). Printed in the report header
//                                    when != 1, so single-device output is
//                                    byte-identical to pre-multi builds.
//
// The flags build ONE vgpu::RuntimeOptions value — starting from
// RuntimeOptions::from_env(), so VGPU_* variables still work and flags win
// over them — and install it with vgpu::set_ambient_options(). Every Runtime
// the bench constructs through the legacy Runtime(profile) constructor picks
// it up; no setenv round-trips.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <vgpu.hpp>

#include "core/common.hpp"
#include "core/report.hpp"

namespace cumbench {

using cumb::PairResult;
using cumb::Runtime;
using vgpu::DeviceProfile;

/// Export the standard counters of a naive/optimized pair.
inline void export_pair(benchmark::State& state, const PairResult& r) {
  state.counters["naive_sim_ms"] = r.naive_us * 1e-3;
  state.counters["optimized_sim_ms"] = r.optimized_us * 1e-3;
  state.counters["speedup"] = r.speedup();
  state.counters["verified"] = r.results_match ? 1 : 0;
}

/// The --devices=N flag value (default 1). Multi-GPU benches scale their
/// device sweep with it; single-GPU benches ignore it.
inline int& device_count_ref() {
  static int n = 1;
  return n;
}
inline int device_count() { return device_count_ref(); }

/// Print the standard banner; call at the top of each bench main(), after
/// consume_prof_flags. The device line appears only for multi-GPU runs, so
/// single-device output stays byte-identical.
inline void banner(const char* figure, const char* paper_result) {
  std::printf("# %s\n# Paper result: %s\n# Columns are simulated times from the "
              "vgpu model (see DESIGN.md).\n",
              figure, paper_result);
  if (device_count() != 1) std::printf("# devices: %d\n", device_count());
}

/// Strip the vgpu flags from argv (google-benchmark rejects unknown flags)
/// and fold them into one RuntimeOptions installed as the process ambient
/// override. Modes are validated eagerly so a typo fails the run instead of
/// silently profiling/advising nothing; any other spelling starting with a
/// vgpu flag name (e.g. "--trace-out" without a value, "--advise-x") is
/// rejected here too instead of leaking through to google-benchmark's own
/// confusing "unrecognized argument" failure.
inline void consume_prof_flags(int* argc, char** argv) {
  auto is_vgpu_flag = [](const char* a) {
    return std::strncmp(a, "--prof", 6) == 0 ||
           std::strncmp(a, "--trace-out", 11) == 0 ||
           std::strncmp(a, "--advise", 8) == 0 ||
           std::strncmp(a, "--threads", 9) == 0 ||
           std::strncmp(a, "--fidelity", 10) == 0 ||
           std::strncmp(a, "--check", 7) == 0 ||
           std::strncmp(a, "--fault", 7) == 0 ||
           std::strncmp(a, "--devices", 9) == 0;
  };
  vgpu::RuntimeOptions opts = vgpu::RuntimeOptions::from_env();
  bool any = false;
  int keep = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--prof") == 0) {
      opts.prof = vgpu::ProfMode::kSummary | vgpu::ProfMode::kMetrics;
    } else if (std::strncmp(a, "--prof=", 7) == 0) {
      opts.prof = vgpu::parse_prof_mode(a + 7);  // Throws on a bad token.
    } else if (std::strncmp(a, "--trace-out=", 12) == 0) {
      opts.trace_path = a + 12;
      if (opts.prof == vgpu::ProfMode::kOff) opts.prof = vgpu::ProfMode::kTrace;
    } else if (std::strcmp(a, "--advise") == 0) {
      opts.advise = vgpu::AdviseMode::kFull;
    } else if (std::strncmp(a, "--advise=", 9) == 0) {
      opts.advise = vgpu::parse_advise_mode(a + 9);
    } else if (std::strncmp(a, "--advise-out=", 13) == 0) {
      opts.advise_json_path = a + 13;
      if (opts.advise == vgpu::AdviseMode::kOff)
        opts.advise = vgpu::AdviseMode::kFull;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      opts.sim_threads = std::atoi(a + 10);
    } else if (std::strncmp(a, "--fidelity=", 11) == 0) {
      opts.fidelity = vgpu::fidelity_from_string(a + 11);  // Throws on typos.
    } else if (std::strcmp(a, "--check") == 0) {
      opts.check = vgpu::CheckMode::kFull;
    } else if (std::strncmp(a, "--check=", 8) == 0) {
      opts.check = vgpu::parse_check_mode(a + 8);
    } else if (std::strncmp(a, "--fault=", 8) == 0) {
      vgpu::FaultInjector::parse(a + 8);  // Throws on a malformed spec.
      opts.fault_spec = a + 8;
    } else if (std::strncmp(a, "--devices=", 10) == 0) {
      int n = std::atoi(a + 10);
      if (n < 1 || n > 64) {
        std::fprintf(stderr, "--devices=%s: expected 1..64\n", a + 10);
        std::exit(1);
      }
      opts.devices = n;
      device_count_ref() = n;
    } else if (is_vgpu_flag(a)) {
      std::fprintf(stderr, "unrecognized vgpu flag: %s\n", a);
      std::exit(1);
    } else {
      argv[keep++] = argv[i];
      continue;
    }
    any = true;
  }
  *argc = keep;
  // Install only when a flag was actually given: with none, legacy Runtimes
  // keep re-reading the environment per construction (some benches mutate
  // VGPU_* between Runtimes and depend on that).
  if (any) vgpu::set_ambient_options(std::move(opts));
}

}  // namespace cumbench

/// Boilerplate main that prints a banner before running the benchmarks.
#define CUMB_BENCH_MAIN(figure, paper_result)                       \
  int main(int argc, char** argv) {                                 \
    cumbench::consume_prof_flags(&argc, argv);                      \
    cumbench::banner(figure, paper_result);                         \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }
