#pragma once

// Shared scaffolding for the per-figure benchmark binaries.
//
// Each binary regenerates one table or figure from the paper's evaluation.
// All reported numbers are *simulated* times (the vgpu timing model), not
// wall-clock: the google-benchmark iteration wraps one deterministic
// simulation and exports the simulated milliseconds and speedup as counters,
// so one iteration per configuration is exact. A header printed from main()
// states which figure the series reproduces and what the paper measured.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/common.hpp"
#include "core/report.hpp"
#include "sim/device.hpp"

namespace cumbench {

using cumb::PairResult;
using cumb::Runtime;
using vgpu::DeviceProfile;

/// Export the standard counters of a naive/optimized pair.
inline void export_pair(benchmark::State& state, const PairResult& r) {
  state.counters["naive_sim_ms"] = r.naive_us * 1e-3;
  state.counters["optimized_sim_ms"] = r.optimized_us * 1e-3;
  state.counters["speedup"] = r.speedup();
  state.counters["verified"] = r.results_match ? 1 : 0;
}

/// Print the standard banner; call at the top of each bench main().
inline void banner(const char* figure, const char* paper_result) {
  std::printf("# %s\n# Paper result: %s\n# Columns are simulated times from the "
              "vgpu model (see DESIGN.md).\n",
              figure, paper_result);
}

}  // namespace cumbench

/// Boilerplate main that prints a banner before running the benchmarks.
#define CUMB_BENCH_MAIN(figure, paper_result)                       \
  int main(int argc, char** argv) {                                 \
    cumbench::banner(figure, paper_result);                         \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }
