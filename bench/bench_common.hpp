#pragma once

// Shared scaffolding for the per-figure benchmark binaries.
//
// Each binary regenerates one table or figure from the paper's evaluation.
// All reported numbers are *simulated* times (the vgpu timing model), not
// wall-clock: the google-benchmark iteration wraps one deterministic
// simulation and exports the simulated milliseconds and speedup as counters,
// so one iteration per configuration is exact. A header printed from main()
// states which figure the series reproduces and what the paper measured.

// Every bench binary also understands the vgpu-prof / vgpu-advise flags
// (consumed before google-benchmark sees the argv):
//
//   --prof[=summary,metrics,trace]   enable profiling for every Runtime the
//                                    bench constructs (default: summary,metrics)
//   --trace-out=FILE.json            write chrome://tracing JSON; implies
//                                    --prof=trace. Successive configurations
//                                    number their files FILE.json, FILE.1.json, ...
//   --advise[=warn|full]             enable the performance advisor (default:
//                                    full); each Runtime prints its report at
//                                    destruction
//   --advise-out=FILE.json           write the JSON advice report; implies
//                                    --advise=full
//
// All of them just seed the VGPU_PROF / VGPU_TRACE_OUT / VGPU_ADVISE /
// VGPU_ADVISE_OUT environment variables, which each Runtime reads at
// construction.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <vgpu.hpp>

#include "core/common.hpp"
#include "core/report.hpp"

namespace cumbench {

using cumb::PairResult;
using cumb::Runtime;
using vgpu::DeviceProfile;

/// Export the standard counters of a naive/optimized pair.
inline void export_pair(benchmark::State& state, const PairResult& r) {
  state.counters["naive_sim_ms"] = r.naive_us * 1e-3;
  state.counters["optimized_sim_ms"] = r.optimized_us * 1e-3;
  state.counters["speedup"] = r.speedup();
  state.counters["verified"] = r.results_match ? 1 : 0;
}

/// Print the standard banner; call at the top of each bench main().
inline void banner(const char* figure, const char* paper_result) {
  std::printf("# %s\n# Paper result: %s\n# Columns are simulated times from the "
              "vgpu model (see DESIGN.md).\n",
              figure, paper_result);
}

/// Strip the vgpu flags (--prof / --trace-out / --advise / --advise-out)
/// from argv (google-benchmark rejects unknown flags) and translate them
/// into the corresponding environment variables. Validates modes eagerly so
/// a typo fails the run instead of silently profiling/advising nothing; any
/// other spelling starting with a vgpu flag name (e.g. "--trace-out" without
/// a value, "--advise-x") is rejected here too instead of leaking through to
/// google-benchmark's own confusing "unrecognized argument" failure.
inline void consume_prof_flags(int* argc, char** argv) {
  auto is_vgpu_flag = [](const char* a) {
    return std::strncmp(a, "--prof", 6) == 0 ||
           std::strncmp(a, "--trace-out", 11) == 0 ||
           std::strncmp(a, "--advise", 8) == 0;
  };
  int keep = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--prof") == 0) {
      setenv("VGPU_PROF", "summary,metrics", 1);
    } else if (std::strncmp(a, "--prof=", 7) == 0) {
      vgpu::parse_prof_mode(a + 7);  // Throws on a bad token.
      setenv("VGPU_PROF", a + 7, 1);
    } else if (std::strncmp(a, "--trace-out=", 12) == 0) {
      setenv("VGPU_TRACE_OUT", a + 12, 1);
      const char* mode = std::getenv("VGPU_PROF");
      if (mode == nullptr || *mode == '\0') setenv("VGPU_PROF", "trace", 1);
    } else if (std::strcmp(a, "--advise") == 0) {
      setenv("VGPU_ADVISE", "full", 1);
    } else if (std::strncmp(a, "--advise=", 9) == 0) {
      vgpu::parse_advise_mode(a + 9);  // Throws on a bad token.
      setenv("VGPU_ADVISE", a + 9, 1);
    } else if (std::strncmp(a, "--advise-out=", 13) == 0) {
      setenv("VGPU_ADVISE_OUT", a + 13, 1);
      const char* mode = std::getenv("VGPU_ADVISE");
      if (mode == nullptr || *mode == '\0') setenv("VGPU_ADVISE", "full", 1);
    } else if (is_vgpu_flag(a)) {
      std::fprintf(stderr, "unrecognized vgpu flag: %s\n", a);
      std::exit(1);
    } else {
      argv[keep++] = argv[i];
    }
  }
  *argc = keep;
}

}  // namespace cumbench

/// Boilerplate main that prints a banner before running the benchmarks.
#define CUMB_BENCH_MAIN(figure, paper_result)                       \
  int main(int argc, char** argv) {                                 \
    cumbench::banner(figure, paper_result);                         \
    cumbench::consume_prof_flags(&argc, argv);                      \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }
