// Multi-GPU port: sharded histogram (vgpu-multi scale-out pair).
//
// The sample stream is sharded contiguously across N devices, each bins its
// shard locally, and the per-device partial histograms are reduced onto
// device 0 in ordinal order (the deterministic cross-device merge). The
// naive variant ships every partial through host memory; the optimized one
// sends them peer-to-peer. Integer bins make both variants exact.

#include "bench_common.hpp"
#include "multi/ports.hpp"

namespace {

constexpr int kStrongSamples = 1 << 20;
constexpr int kWeakSamplesPerDevice = 1 << 18;
constexpr int kBins = 256;
constexpr double kSkew = 0.25;

void export_multi(benchmark::State& state, const cumb::MultiPairResult& r) {
  state.counters["devices"] = r.devices;
  state.counters["naive_sim_ms"] = r.naive_us * 1e-3;
  state.counters["optimized_sim_ms"] = r.optimized_us * 1e-3;
  state.counters["speedup"] = r.speedup();
  state.counters["verified"] = r.results_match() ? 1 : 0;
  state.counters["peer_transfers"] = r.optimized_transfers;
}

void Multi_ShardHistogram_Strong(benchmark::State& state) {
  int devices = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = cumb::run_sharded_histogram(vgpu::ambient_options(), devices,
                                         kStrongSamples, kBins, kSkew);
    export_multi(state, r);
  }
}

void Multi_ShardHistogram_Weak(benchmark::State& state) {
  int devices = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = cumb::run_sharded_histogram(vgpu::ambient_options(), devices,
                                         kWeakSamplesPerDevice * devices,
                                         kBins, kSkew);
    export_multi(state, r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  cumbench::consume_prof_flags(&argc, argv);
  cumbench::banner(
      "Multi-GPU - sharded histogram (staged vs peer-to-peer reduction)",
      "P2P partial-histogram reduction avoids N-1 host bounces per merge");
  std::vector<int> counts = cumbench::device_count() != 1
                                ? std::vector<int>{cumbench::device_count()}
                                : std::vector<int>{1, 2, 4};
  for (int d : counts) {
    benchmark::RegisterBenchmark("Multi_ShardHistogram_Strong",
                                 Multi_ShardHistogram_Strong)
        ->Arg(d)
        ->Iterations(1);
    benchmark::RegisterBenchmark("Multi_ShardHistogram_Weak",
                                 Multi_ShardHistogram_Weak)
        ->Arg(d)
        ->Iterations(1);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
