// Ablation: pinned vs pageable host memory under the HDOverlap pipeline.
// Async copies of pageable memory synchronize the host and run at staging
// bandwidth, so the Fig. 14 overlap only materializes with pinned buffers —
// the prerequisite the CUDA documentation attaches to cudaMemcpyAsync.

#include <vector>

#include "bench_common.hpp"
#include "core/comem.hpp"
#include "linalg/generate.hpp"

namespace {

using namespace cumb;
using vgpu::Dim3;
using vgpu::HostMem;
using vgpu::Stream;

double pipelined_axpy(Runtime& rt, int n, int chunks, HostMem mem) {
  const Real a = Real{2};
  auto hx = random_vector(static_cast<std::size_t>(n), 151);
  auto hy = random_vector(static_cast<std::size_t>(n), 152);
  std::vector<Real> out(static_cast<std::size_t>(n));
  auto x = rt.malloc<Real>(static_cast<std::size_t>(n));
  auto y = rt.malloc<Real>(static_cast<std::size_t>(n));
  std::vector<Stream*> streams;
  for (int i = 0; i < 4; ++i) streams.push_back(&rt.create_stream());

  int chunk_n = n / chunks;
  rt.synchronize();
  double t0 = rt.now_us();
  for (int c = 0; c < chunks; ++c) {
    Stream& s = *streams[static_cast<std::size_t>(c % 4)];
    std::size_t off = static_cast<std::size_t>(c) * static_cast<std::size_t>(chunk_n);
    auto xc = x.subspan(off, static_cast<std::size_t>(chunk_n));
    auto yc = y.subspan(off, static_cast<std::size_t>(chunk_n));
    rt.memcpy_h2d_async(s, xc, std::span<const Real>(hx).subspan(off, chunk_n), mem);
    rt.memcpy_h2d_async(s, yc, std::span<const Real>(hy).subspan(off, chunk_n), mem);
    rt.launch(s, {Dim3{blocks_for(chunk_n, 256)}, Dim3{256}, "axpy"},
              [=](WarpCtx& w) { return axpy_1per_thread(w, xc, yc, chunk_n, a); });
    rt.memcpy_d2h_async(s, std::span<Real>(out).subspan(off, chunk_n), yc, mem);
  }
  rt.synchronize();
  return rt.now_us() - t0;
}

void Ablate_PinnedVsPageable(benchmark::State& state) {
  bool pinned = state.range(0) != 0;
  HostMem mem = pinned ? HostMem::kPinned : HostMem::kPageable;
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    double us = pipelined_axpy(rt, 1 << 20, 4, mem);
    state.counters["pipeline_sim_ms"] = us * 1e-3;
    state.counters["pinned"] = pinned ? 1 : 0;
  }
}

}  // namespace

BENCHMARK(Ablate_PinnedVsPageable)->Arg(0)->Arg(1)->Iterations(1);

CUMB_BENCH_MAIN("Ablation - pinned vs pageable host memory in the copy pipeline",
                "overlap requires pinned buffers; pageable degrades to sync staging")
