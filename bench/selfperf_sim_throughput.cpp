// Self-performance of the simulator itself: wall-clock simulated-blocks-per-
// second of the parallel grid engine at 1..N host threads (DESIGN.md,
// "Host-side parallelization" and section 11). Unlike every fig*_ benchmark,
// the numbers here are *host* wall-clock — the simulator is the system under
// test, the simulated timing model is just the workload.
//
// Three workloads exercise the paths the engine parallelizes: a tiled matmul
// grid (shared memory + barriers, fig_shmem_matmul's kernel), Mariani-Silver
// Mandelbrot (dynamic-parallelism child levels, fig05's kernel) and a
// global-atomics histogram (host-atomic integer adds). Each sample also
// reports the engine's phase split (block execution vs deterministic merge),
// the coalesce-memo hit rate, and a VGPU_FIDELITY=fast vs exact comparison
// at one thread. Results are printed and written to BENCH_selfperf.json in
// the working directory.
//
//   selfperf_sim_throughput [--threads=1,2,4]
//
// Without --threads the sweep is 1..clamp(hardware_concurrency, 4, 8).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/dynparallel.hpp"
#include "core/histogram.hpp"
#include "core/shmem_mm.hpp"
#include <vgpu.hpp>

namespace {

using namespace vgpu;
using Clock = std::chrono::steady_clock;

struct Sample {
  int threads = 0;
  std::uint64_t blocks = 0;
  double wall_ms = 0;
  double blocks_per_s = 0;
  double execute_ms = 0;     ///< Engine phase: running blocks (pool fan-out).
  double merge_ms = 0;       ///< Engine phase: deterministic result merge.
  double co_hit_rate = 0;    ///< Coalesce-memo hits / (hits + misses).
};

struct FidelitySample {
  double exact_ms = 0;
  double fast_ms = 0;
  double speedup = 0;  ///< exact_ms / fast_ms at one thread.
};

struct WorkloadReport {
  const char* name;
  std::vector<Sample> samples;
  FidelitySample fast;
};

/// Run `reps` kernels through a fresh Runtime at `threads` sim threads and
/// measure host wall-clock around the run_kernel calls only.
template <typename Launch>
Sample measure(int threads, int reps, Fidelity fid, Launch&& launch) {
  Runtime rt;
  rt.set_sim_threads(threads);
  rt.set_fidelity(fid);
  Sample s;
  s.threads = threads;
  // One untimed warm-up builds the worker pool and arenas.
  s.blocks = 0;
  (void)launch(rt);
  rt.gpu().clear_phase_times();
  const std::uint64_t h0 = rt.gpu().coalesce_cache_hits();
  const std::uint64_t m0 = rt.gpu().coalesce_cache_misses();
  auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) s.blocks += launch(rt);
  auto t1 = Clock::now();
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.blocks_per_s = s.wall_ms > 0 ? 1e3 * static_cast<double>(s.blocks) / s.wall_ms : 0;
  GpuExec::SimPhaseTimes ph = rt.gpu().phase_times();
  s.execute_ms = ph.execute_ms;
  s.merge_ms = ph.merge_ms;
  const double hits = static_cast<double>(rt.gpu().coalesce_cache_hits() - h0);
  const double misses = static_cast<double>(rt.gpu().coalesce_cache_misses() - m0);
  s.co_hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0;
  return s;
}

std::uint64_t run_matmul(Runtime& rt) {
  const int n = 96;  // 6x6 grid of 16x16 blocks.
  static std::vector<cumb::Real> ha, hb;
  if (ha.empty()) {
    ha.resize(n * n);
    hb.resize(n * n);
    for (int i = 0; i < n * n; ++i) {
      ha[i] = 0.5f * static_cast<float>(i % 9) - 1.0f;
      hb[i] = 0.25f * static_cast<float>(i % 5) + 0.1f;
    }
  }
  auto a = rt.malloc<cumb::Real>(n * n);
  auto b = rt.malloc<cumb::Real>(n * n);
  auto c = rt.malloc<cumb::Real>(n * n);
  rt.memcpy_h2d(a, std::span<const cumb::Real>(ha));
  rt.memcpy_h2d(b, std::span<const cumb::Real>(hb));
  KernelRun run = rt.gpu().run_kernel(
      {Dim3{n / cumb::kTile, n / cumb::kTile}, Dim3{cumb::kTile, cumb::kTile}, "mm"},
      [=](WarpCtx& w) { return cumb::mm_shared_kernel(w, a, b, c, n); });
  return run.stats.blocks;
}

std::uint64_t run_dynparallel(Runtime& rt) {
  const int size = 256;
  cumb::MandelFrame f;
  f.scale = 3.0f / static_cast<float>(size);
  auto dwell = rt.malloc<int>(size * size);
  const int init_size = size / cumb::kMsInitDiv;
  KernelRun run = rt.gpu().run_kernel(
      {Dim3{cumb::kMsInitDiv, cumb::kMsInitDiv}, Dim3{cumb::kMsTpb}, "ms"},
      [=](WarpCtx& w) {
        return cumb::mandel_ms_kernel(w, dwell, size, f, 128, 0, 0, init_size);
      });
  return run.stats.blocks;
}

std::uint64_t run_histogram(Runtime& rt) {
  const int n = 256 * 64;
  const int num_bins = 128;
  static std::vector<int> h;
  if (h.empty()) {
    h.resize(n);
    for (int i = 0; i < n; ++i) h[i] = (i * 11 + i / 5) % num_bins;
  }
  auto bins_in = rt.malloc<int>(n);
  auto hist = rt.malloc<int>(num_bins);
  rt.memcpy_h2d(bins_in, std::span<const int>(h));
  rt.memset(hist, 0);
  KernelRun run = rt.gpu().run_kernel(
      {Dim3{n / 256}, Dim3{256}, "hist"},
      [=](WarpCtx& w) { return cumb::hist_global_kernel(w, bins_in, hist, n); });
  return run.stats.blocks;
}

void emit_json(const std::vector<WorkloadReport>& reports,
               const std::vector<int>& threads) {
  std::FILE* f = std::fopen("BENCH_selfperf.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_selfperf.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"selfperf_sim_throughput\",\n");
  std::fprintf(f, "  \"unit\": \"simulated blocks per wall-clock second\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"max_threads\": %d,\n  \"workloads\": [\n", threads.back());
  for (std::size_t w = 0; w < reports.size(); ++w) {
    const WorkloadReport& r = reports[w];
    std::fprintf(f, "    {\"name\": \"%s\",\n", r.name);
    std::fprintf(f,
                 "     \"fidelity_fast\": {\"exact_ms\": %.3f, \"fast_ms\": %.3f, "
                 "\"speedup_vs_exact\": %.3f},\n",
                 r.fast.exact_ms, r.fast.fast_ms, r.fast.speedup);
    std::fprintf(f, "     \"results\": [\n");
    double base = r.samples.empty() ? 0 : r.samples.front().blocks_per_s;
    for (std::size_t i = 0; i < r.samples.size(); ++i) {
      const Sample& s = r.samples[i];
      std::fprintf(f,
                   "      {\"threads\": %d, \"blocks\": %llu, \"wall_ms\": %.3f, "
                   "\"blocks_per_s\": %.1f, \"speedup_vs_1\": %.3f, "
                   "\"execute_ms\": %.3f, \"merge_ms\": %.3f, "
                   "\"coalesce_hit_rate\": %.3f}%s\n",
                   s.threads, static_cast<unsigned long long>(s.blocks), s.wall_ms,
                   s.blocks_per_s, base > 0 ? s.blocks_per_s / base : 0.0,
                   s.execute_ms, s.merge_ms, s.co_hit_rate,
                   i + 1 < r.samples.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", w + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Parse "--threads=1,2,4" into an ascending positive list; empty on error.
std::vector<int> parse_threads_arg(const char* arg) {
  std::vector<int> out;
  std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    int v = std::atoi(s.substr(pos, comma - pos).c_str());
    if (v <= 0 || v > 256) return {};
    out.push_back(v);
    pos = comma + 1;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> threads;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0)
      threads = parse_threads_arg(argv[i] + 10);
  }
  if (threads.empty()) {
    const int max_threads = std::clamp(hw, 4, 8);  // Always show the 4-thread target.
    for (int t = 1; t <= max_threads; ++t) threads.push_back(t);
  }
  std::printf("# selfperf_sim_throughput: simulator wall-clock throughput\n");
  std::printf("# host concurrency=%d, sim threads:", hw);
  for (int t : threads) std::printf(" %d", t);
  std::printf("\n");

  std::vector<WorkloadReport> reports = {
      {"shmem_matmul", {}, {}},
      {"dynparallel_mandel", {}, {}},
      {"histogram_atomics", {}, {}}};
  for (int t : threads) {
    reports[0].samples.push_back(measure(t, 6, Fidelity::kExact, run_matmul));
    reports[1].samples.push_back(measure(t, 2, Fidelity::kExact, run_dynparallel));
    reports[2].samples.push_back(measure(t, 6, Fidelity::kExact, run_histogram));
  }
  // Fast-fidelity comparison at one thread: the sampled replay is a
  // single-thread win, independent of pool scaling.
  auto fast_of = [](double exact_ms, double fast_ms) {
    FidelitySample fs;
    fs.exact_ms = exact_ms;
    fs.fast_ms = fast_ms;
    fs.speedup = fast_ms > 0 ? exact_ms / fast_ms : 0;
    return fs;
  };
  reports[0].fast = fast_of(measure(1, 6, Fidelity::kExact, run_matmul).wall_ms,
                            measure(1, 6, Fidelity::kFast, run_matmul).wall_ms);
  reports[1].fast =
      fast_of(measure(1, 2, Fidelity::kExact, run_dynparallel).wall_ms,
              measure(1, 2, Fidelity::kFast, run_dynparallel).wall_ms);
  reports[2].fast = fast_of(measure(1, 6, Fidelity::kExact, run_histogram).wall_ms,
                            measure(1, 6, Fidelity::kFast, run_histogram).wall_ms);

  for (const WorkloadReport& r : reports) {
    std::printf("\n%-20s %8s %10s %14s %12s %11s %9s %8s\n", r.name, "threads",
                "wall_ms", "blocks_per_s", "speedup", "execute_ms", "merge_ms",
                "co_hit");
    double base = r.samples.front().blocks_per_s;
    for (const Sample& s : r.samples)
      std::printf("%-20s %8d %10.2f %14.1f %11.2fx %11.2f %9.2f %7.1f%%\n", "",
                  s.threads, s.wall_ms, s.blocks_per_s,
                  base > 0 ? s.blocks_per_s / base : 0.0, s.execute_ms, s.merge_ms,
                  100.0 * s.co_hit_rate);
    std::printf("%-20s fast-fidelity @1t: exact %.2fms, fast %.2fms (%.2fx)\n", "",
                r.fast.exact_ms, r.fast.fast_ms, r.fast.speedup);
  }
  emit_json(reports, threads);
  std::printf("\nwrote BENCH_selfperf.json\n");
  return 0;
}
