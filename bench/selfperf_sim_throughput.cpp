// Self-performance of the simulator itself: wall-clock simulated-blocks-per-
// second of the parallel grid engine at 1..N host threads (DESIGN.md,
// "Host-side parallelization"). Unlike every fig*_ benchmark, the numbers
// here are *host* wall-clock — the simulator is the system under test, the
// simulated timing model is just the workload.
//
// Three workloads exercise the paths the engine parallelizes: a tiled matmul
// grid (shared memory + barriers, fig_shmem_matmul's kernel), Mariani-Silver
// Mandelbrot (dynamic-parallelism child levels, fig05's kernel) and a
// global-atomics histogram (host-atomic integer adds). Results are printed
// and written to BENCH_selfperf.json in the working directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/dynparallel.hpp"
#include "core/histogram.hpp"
#include "core/shmem_mm.hpp"
#include <vgpu.hpp>

namespace {

using namespace vgpu;
using Clock = std::chrono::steady_clock;

struct Sample {
  int threads = 0;
  std::uint64_t blocks = 0;
  double wall_ms = 0;
  double blocks_per_s = 0;
};

struct WorkloadReport {
  const char* name;
  std::vector<Sample> samples;
};

/// Run `reps` kernels through a fresh Runtime at `threads` sim threads and
/// measure host wall-clock around the run_kernel calls only.
template <typename Launch>
Sample measure(const char* /*name*/, int threads, int reps, Launch&& launch) {
  Runtime rt;
  rt.set_sim_threads(threads);
  Sample s;
  s.threads = threads;
  // One untimed warm-up builds the worker pool and arenas.
  s.blocks = 0;
  (void)launch(rt);
  auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) s.blocks += launch(rt);
  auto t1 = Clock::now();
  s.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  s.blocks_per_s = s.wall_ms > 0 ? 1e3 * static_cast<double>(s.blocks) / s.wall_ms : 0;
  return s;
}

std::uint64_t run_matmul(Runtime& rt) {
  const int n = 96;  // 6x6 grid of 16x16 blocks.
  static std::vector<cumb::Real> ha, hb;
  if (ha.empty()) {
    ha.resize(n * n);
    hb.resize(n * n);
    for (int i = 0; i < n * n; ++i) {
      ha[i] = 0.5f * static_cast<float>(i % 9) - 1.0f;
      hb[i] = 0.25f * static_cast<float>(i % 5) + 0.1f;
    }
  }
  auto a = rt.malloc<cumb::Real>(n * n);
  auto b = rt.malloc<cumb::Real>(n * n);
  auto c = rt.malloc<cumb::Real>(n * n);
  rt.memcpy_h2d(a, std::span<const cumb::Real>(ha));
  rt.memcpy_h2d(b, std::span<const cumb::Real>(hb));
  KernelRun run = rt.gpu().run_kernel(
      {Dim3{n / cumb::kTile, n / cumb::kTile}, Dim3{cumb::kTile, cumb::kTile}, "mm"},
      [=](WarpCtx& w) { return cumb::mm_shared_kernel(w, a, b, c, n); });
  return run.stats.blocks;
}

std::uint64_t run_dynparallel(Runtime& rt) {
  const int size = 256;
  cumb::MandelFrame f;
  f.scale = 3.0f / static_cast<float>(size);
  auto dwell = rt.malloc<int>(size * size);
  const int init_size = size / cumb::kMsInitDiv;
  KernelRun run = rt.gpu().run_kernel(
      {Dim3{cumb::kMsInitDiv, cumb::kMsInitDiv}, Dim3{cumb::kMsTpb}, "ms"},
      [=](WarpCtx& w) {
        return cumb::mandel_ms_kernel(w, dwell, size, f, 128, 0, 0, init_size);
      });
  return run.stats.blocks;
}

std::uint64_t run_histogram(Runtime& rt) {
  const int n = 256 * 64;
  const int num_bins = 128;
  static std::vector<int> h;
  if (h.empty()) {
    h.resize(n);
    for (int i = 0; i < n; ++i) h[i] = (i * 11 + i / 5) % num_bins;
  }
  auto bins_in = rt.malloc<int>(n);
  auto hist = rt.malloc<int>(num_bins);
  rt.memcpy_h2d(bins_in, std::span<const int>(h));
  rt.memset(hist, 0);
  KernelRun run = rt.gpu().run_kernel(
      {Dim3{n / 256}, Dim3{256}, "hist"},
      [=](WarpCtx& w) { return cumb::hist_global_kernel(w, bins_in, hist, n); });
  return run.stats.blocks;
}

void emit_json(const std::vector<WorkloadReport>& reports, int max_threads) {
  std::FILE* f = std::fopen("BENCH_selfperf.json", "w");
  if (f == nullptr) {
    std::perror("BENCH_selfperf.json");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"selfperf_sim_throughput\",\n");
  std::fprintf(f, "  \"unit\": \"simulated blocks per wall-clock second\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"max_threads\": %d,\n  \"workloads\": [\n", max_threads);
  for (std::size_t w = 0; w < reports.size(); ++w) {
    const WorkloadReport& r = reports[w];
    std::fprintf(f, "    {\"name\": \"%s\", \"results\": [\n", r.name);
    double base = r.samples.empty() ? 0 : r.samples.front().blocks_per_s;
    for (std::size_t i = 0; i < r.samples.size(); ++i) {
      const Sample& s = r.samples[i];
      std::fprintf(f,
                   "      {\"threads\": %d, \"blocks\": %llu, \"wall_ms\": %.3f, "
                   "\"blocks_per_s\": %.1f, \"speedup_vs_1\": %.3f}%s\n",
                   s.threads, static_cast<unsigned long long>(s.blocks), s.wall_ms,
                   s.blocks_per_s, base > 0 ? s.blocks_per_s / base : 0.0,
                   i + 1 < r.samples.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", w + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const int max_threads = std::clamp(hw, 4, 8);  // Always show the 4-thread target.
  std::printf("# selfperf_sim_throughput: simulator wall-clock throughput\n");
  std::printf("# host concurrency=%d, sweeping 1..%d sim threads\n", hw, max_threads);

  std::vector<WorkloadReport> reports = {
      {"shmem_matmul", {}}, {"dynparallel_mandel", {}}, {"histogram_atomics", {}}};
  for (int t = 1; t <= max_threads; ++t) {
    reports[0].samples.push_back(measure("shmem_matmul", t, 6, run_matmul));
    reports[1].samples.push_back(measure("dynparallel_mandel", t, 2, run_dynparallel));
    reports[2].samples.push_back(measure("histogram_atomics", t, 6, run_histogram));
  }
  for (const WorkloadReport& r : reports) {
    std::printf("\n%-20s %8s %10s %14s %12s\n", r.name, "threads", "wall_ms",
                "blocks_per_s", "speedup");
    double base = r.samples.front().blocks_per_s;
    for (const Sample& s : r.samples)
      std::printf("%-20s %8d %10.2f %14.1f %11.2fx\n", "", s.threads, s.wall_ms,
                  s.blocks_per_s, base > 0 ? s.blocks_per_s / base : 0.0);
  }
  emit_json(reports, max_threads);
  std::printf("\nwrote BENCH_selfperf.json\n");
  return 0;
}
