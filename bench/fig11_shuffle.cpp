// Fig. 11: reduction with warp shuffles vs shared-memory tree.
// Paper: ~25% faster at n = 2^27 on V100, gain grows with n.

#include "bench_common.hpp"
#include "core/shuffle_reduce.hpp"

namespace {

void Fig11_Shuffle(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_shuffle_reduce(rt, n);
    cumbench::export_pair(state, r);
    state.counters["shuffles"] = static_cast<double>(r.shuffles);
    state.counters["naive_barriers"] = static_cast<double>(r.naive_barriers);
    state.counters["opt_barriers"] = static_cast<double>(r.optimized_barriers);
  }
}

}  // namespace

BENCHMARK(Fig11_Shuffle)->RangeMultiplier(4)->Range(1 << 16, 1 << 22)->Iterations(1);

CUMB_BENCH_MAIN("Fig. 11 - Shuffle (register reduction vs shared memory)",
                "~1.25x at 2^27; advantage grows with input size")
