// Section IV-A: tiled matrix multiply with shared memory vs global-only.
// Paper: ~20-25% faster at 2048^2 (scaled down here; reuse factor identical).

#include "bench_common.hpp"
#include "core/shmem_mm.hpp"

namespace {

void Shmem_Matmul(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_shmem_mm(rt, n);
    cumbench::export_pair(state, r);
    state.counters["global_gld_requests"] =
        static_cast<double>(r.naive_stats.gld_requests);
    state.counters["shared_gld_requests"] =
        static_cast<double>(r.optimized_stats.gld_requests);
  }
}

}  // namespace

BENCHMARK(Shmem_Matmul)->RangeMultiplier(2)->Range(64, 256)->Iterations(1);

CUMB_BENCH_MAIN("Sec. IV-A - Shmem (tiled matmul in shared memory)",
                "~1.2-1.25x over global-only at 2048^2, scaling with matrix size")
