// Fig. 13: reduction with strided indexing (bank conflicts) vs sequential
// indexing (conflict-free). Paper: ~1.3x on V100, growing with array size.

#include "bench_common.hpp"
#include "core/bankredux.hpp"

namespace {

void Fig13_BankRedux(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    cumbench::Runtime rt(cumbench::DeviceProfile::v100());
    auto r = cumb::run_bankredux(rt, n);
    cumbench::export_pair(state, r);
    state.counters["bank_conflicts"] = static_cast<double>(r.conflicted);
    state.counters["conflict_free"] = static_cast<double>(r.conflict_free);
  }
}

}  // namespace

BENCHMARK(Fig13_BankRedux)->RangeMultiplier(4)->Range(1 << 16, 1 << 22)->Iterations(1);

CUMB_BENCH_MAIN("Fig. 13 - BankRedux (shared-memory bank conflicts)",
                "conflict-free reduction ~1.3x; gap grows with array size")
